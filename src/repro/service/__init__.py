"""Concurrent query service tier.

An asyncio front end (:class:`~repro.service.server.QueryService`)
over one :class:`~repro.core.engine.QueryEngine`: requests from many
clients are admission-controlled with the calibrated cost model,
fused by the :class:`~repro.service.broker.RequestBroker` when they
share a fusion key within one scheduling window, executed as stacked
engine calls, and demultiplexed back to each caller.  Per-tenant
accounting lives in :mod:`repro.service.tenants`.

See ``docs/ARCHITECTURE.md`` for where this tier sits in the stack
and ``docs/OPERATIONS.md`` for tuning the fusion window and budgets.
"""

from repro.service.broker import (
    FusedGroup,
    PendingRequest,
    RequestBroker,
    fingerprint_of,
    fusion_key,
)
from repro.service.server import QueryService, ServiceStandingQuery
from repro.service.tenants import TenantAccount, TenantLedger

__all__ = [
    "FusedGroup",
    "PendingRequest",
    "QueryService",
    "RequestBroker",
    "ServiceStandingQuery",
    "TenantAccount",
    "TenantLedger",
    "fingerprint_of",
    "fusion_key",
]
