"""Per-tenant accounting for the query service.

The service admits requests from many tenants against one engine, so
fairness has to be priced somewhere: each tenant gets a
:class:`TenantAccount` whose *token budget* is denominated in
predicted wall seconds (the same currency the calibrated
:class:`~repro.core.planner.CostModel` quotes).  Admission charges the
cost model's prediction up front; completion trues the account up
with the measured share of the (possibly fused) evaluation, so a
tenant whose requests keep riding other tenants' fused calls spends
almost nothing.

All mutation happens on the service's event loop -- the ledger is
deliberately lock-free and must not be shared across threads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.errors import ValidationError

__all__ = ["TenantAccount", "TenantLedger"]


@dataclass
class TenantAccount:
    """One tenant's admission budget and usage counters.

    Attributes:
        name: the tenant id requests are submitted under.
        budget_seconds: admission token budget in predicted wall
            seconds; ``None`` means unlimited.  A request whose
            prediction does not fit the remaining budget is rejected
            with :class:`~repro.core.errors.AdmissionRejected`.
        charged_seconds: predicted seconds charged at admission,
            net of completion true-ups -- the number the budget is
            compared against.
        measured_seconds: measured wall seconds actually consumed
            (a fused evaluation's time is split evenly across the
            requests it answered).
        admitted: requests accepted by admission control.
        rejected: requests refused (budget, backlog or deadline).
        fused: admitted requests answered by an evaluation shared
            with at least one other request.
        quarantined: standing queries owned by this tenant that were
            quarantined after repeated tick failures.
    """

    name: str
    budget_seconds: Optional[float] = None
    charged_seconds: float = 0.0
    measured_seconds: float = 0.0
    admitted: int = 0
    rejected: int = 0
    fused: int = 0
    quarantined: int = 0

    @property
    def remaining_seconds(self) -> Optional[float]:
        """Budget left, or ``None`` for an unlimited tenant."""
        if self.budget_seconds is None:
            return None
        return self.budget_seconds - self.charged_seconds

    def would_exceed(self, predicted_seconds: float) -> bool:
        """Whether charging ``predicted_seconds`` overdraws the budget."""
        remaining = self.remaining_seconds
        return remaining is not None and predicted_seconds > remaining


class TenantLedger:
    """All tenant accounts of one service (event-loop confined).

    Accounts are created on first use with an unlimited budget;
    :meth:`set_budget` installs or changes a tenant's cap at any
    time (existing charges are kept, so shrinking a budget below the
    already-charged total blocks further admissions until true-ups
    free room).
    """

    def __init__(self) -> None:
        self._accounts: Dict[str, TenantAccount] = {}

    def account(self, name: str) -> TenantAccount:
        """The tenant's account, created unlimited on first use."""
        if not name or not isinstance(name, str):
            raise ValidationError(
                f"tenant name must be a non-empty string, got {name!r}"
            )
        found = self._accounts.get(name)
        if found is None:
            found = self._accounts[name] = TenantAccount(name)
        return found

    def set_budget(
        self, name: str, budget_seconds: Optional[float]
    ) -> TenantAccount:
        """Install ``budget_seconds`` (None = unlimited) for a tenant."""
        if budget_seconds is not None and not (
            isinstance(budget_seconds, (int, float))
            and not isinstance(budget_seconds, bool)
            and budget_seconds >= 0
        ):
            raise ValidationError(
                f"budget_seconds must be a non-negative number or "
                f"None, got {budget_seconds!r}"
            )
        account = self.account(name)
        account.budget_seconds = (
            None if budget_seconds is None else float(budget_seconds)
        )
        return account

    def charge(self, name: str, predicted_seconds: float) -> None:
        """Admission: debit the prediction and count the request."""
        account = self.account(name)
        account.charged_seconds += predicted_seconds
        account.admitted += 1

    def settle(
        self,
        name: str,
        predicted_seconds: float,
        measured_seconds: float,
        fused: bool,
    ) -> None:
        """Completion: replace the prediction with the measured share."""
        account = self.account(name)
        account.charged_seconds += measured_seconds - predicted_seconds
        account.measured_seconds += measured_seconds
        if fused:
            account.fused += 1

    def accounts(self) -> Dict[str, TenantAccount]:
        """A snapshot mapping of every known tenant account."""
        return dict(self._accounts)
