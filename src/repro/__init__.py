"""repro -- Querying Uncertain Spatio-Temporal Data.

A faithful, laptop-scale reproduction of

    T. Emrich, H.-P. Kriegel, N. Mamoulis, M. Renz, A. Zuefle:
    "Querying Uncertain Spatio-Temporal Data", ICDE 2012.

Uncertain object trajectories are modelled as discrete Markov chains;
probabilistic spatio-temporal queries (exists / for-all / k-times) are
answered *exactly* under possible-worlds semantics through augmented
transition matrices -- see :mod:`repro.core.matrices` for the construction
and DESIGN.md for the full system inventory.

Quickstart::

    import repro

    chain = repro.MarkovChain([[0.0, 0.0, 1.0],
                               [0.6, 0.0, 0.4],
                               [0.0, 0.8, 0.2]])
    window = repro.SpatioTemporalWindow(frozenset({0, 1}), frozenset({2, 3}))
    start = repro.StateDistribution.point(3, 1)
    p = repro.ob_exists_probability(chain, start, window)   # 0.864
"""

from repro.core.batch import (
    backward_vectors,
    batch_exists_multi,
    batch_ktimes_distribution,
    batch_mc_exists,
    batch_ob_exists,
    batch_qb_exists,
)
from repro.core.distribution import StateDistribution
from repro.core.engine import QueryEngine, QueryResult
from repro.core.errors import (
    AdmissionRejected,
    BackendError,
    DegradedExecutionWarning,
    DimensionMismatchError,
    ExecutionError,
    InfeasibleEvidenceError,
    InjectedFaultError,
    NotStochasticError,
    ObservationError,
    QuarantinedQueryError,
    QueryError,
    ReproError,
    SegmentLostError,
    SerializationError,
    StateSpaceError,
    TaskTimeoutError,
    ValidationError,
    WorkerCrashError,
)
from repro.core.forecast import (
    CongestionEvent,
    congestion_report,
    expected_occupancy,
)
from repro.core.estimation import ChainEstimator, estimate_chain
from repro.core.intervals import (
    IntervalMarkovChain,
    bound_exists_probability,
)
from repro.core.nearest_neighbor import nearest_neighbor_probabilities
from repro.core.sequence import Pattern, sequence_probability
from repro.core.smoothing import map_trajectory, posterior_marginals
from repro.core.temporal import (
    FirstPassageResult,
    expected_entry_time,
    expected_visit_count,
    first_passage_distribution,
)
from repro.core.ktimes import (
    ktimes_distribution,
    ktimes_distribution_blocked,
    ktimes_probability,
)
from repro.core.markov import MarkovChain
from repro.core.matrices import (
    AbsorbingMatrices,
    DoubledMatrices,
    build_absorbing_matrices,
    build_doubled_matrices,
    build_ktimes_block_matrices,
)
from repro.core.montecarlo import (
    MonteCarloResult,
    MonteCarloSampler,
    mc_exists_probability,
    mc_forall_probability,
    mc_ktimes_distribution,
)
from repro.core.naive import (
    naive_exists_probability,
    naive_forall_probability,
    naive_ktimes_distribution,
    region_marginals,
)
from repro.core.object_based import (
    ob_exists_probability,
    ob_exists_probability_multi,
    ob_forall_probability,
)
from repro.core.observation import Observation, ObservationSet
from repro.core.pipeline import QueryPipeline
from repro.core.plan_cache import PlanCache, PlanCacheStats
from repro.core.planner import (
    CostModel,
    GroupPlan,
    PlanOptions,
    QueryPlan,
    QueryPlanner,
    StageStats,
    SupervisorPolicy,
)
from repro.core.query import (
    PSTExistsQuery,
    PSTForAllQuery,
    PSTKTimesQuery,
    PSTQuery,
    SpatioTemporalWindow,
)
from repro.core.query_based import (
    QueryBasedEvaluator,
    QueryBasedKTimesEvaluator,
    qb_exists_probability,
    qb_forall_probability,
)
from repro.core.state_space import (
    GraphStateSpace,
    GridStateSpace,
    LineStateSpace,
    StateSpace,
)
from repro.core.streaming import StandingQuery, StreamingQueryEngine
from repro.core.trajectory import (
    PossibleWorldEnumerator,
    Trajectory,
    sample_trajectory,
)
from repro.database.clustering import (
    ChainCluster,
    ClusteredThresholdProcessor,
    ThresholdAnswer,
    cluster_chains,
)
from repro.database.objects import UncertainObject
from repro.database.pruning import GeometricPrefilter, ReachabilityPruner
from repro.database.rtree import Rect, RTree
from repro.database.serialization import (
    load_chain,
    load_database,
    save_chain,
    save_database,
)
from repro.database.uncertain_db import TrajectoryDatabase
from repro.exec.faults import FaultInjector, FaultSpec
from repro.service import (
    QueryService,
    ServiceStandingQuery,
    TenantAccount,
    TenantLedger,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # model
    "MarkovChain",
    "StateDistribution",
    "Observation",
    "ObservationSet",
    "Trajectory",
    "sample_trajectory",
    "PossibleWorldEnumerator",
    # state spaces
    "StateSpace",
    "LineStateSpace",
    "GridStateSpace",
    "GraphStateSpace",
    # queries
    "SpatioTemporalWindow",
    "PSTQuery",
    "PSTExistsQuery",
    "PSTForAllQuery",
    "PSTKTimesQuery",
    # matrices
    "AbsorbingMatrices",
    "DoubledMatrices",
    "build_absorbing_matrices",
    "build_doubled_matrices",
    "build_ktimes_block_matrices",
    # processors
    "batch_ob_exists",
    "batch_qb_exists",
    "batch_exists_multi",
    "batch_mc_exists",
    "batch_ktimes_distribution",
    "backward_vectors",
    "PlanCache",
    "PlanCacheStats",
    # planner + pipeline
    "CostModel",
    "PlanOptions",
    "QueryPlan",
    "GroupPlan",
    "StageStats",
    "QueryPlanner",
    "QueryPipeline",
    "SupervisorPolicy",
    # fault injection
    "FaultInjector",
    "FaultSpec",
    # streaming / monitoring
    "StreamingQueryEngine",
    "StandingQuery",
    # query service
    "QueryService",
    "ServiceStandingQuery",
    "TenantAccount",
    "TenantLedger",
    "ob_exists_probability",
    "ob_forall_probability",
    "ob_exists_probability_multi",
    "QueryBasedEvaluator",
    "QueryBasedKTimesEvaluator",
    "qb_exists_probability",
    "qb_forall_probability",
    "ktimes_distribution",
    "ktimes_distribution_blocked",
    "ktimes_probability",
    "MonteCarloSampler",
    "MonteCarloResult",
    "mc_exists_probability",
    "mc_forall_probability",
    "mc_ktimes_distribution",
    "naive_exists_probability",
    "naive_forall_probability",
    "naive_ktimes_distribution",
    "region_marginals",
    # analysis
    "expected_occupancy",
    "congestion_report",
    "CongestionEvent",
    # model estimation and smoothing
    "ChainEstimator",
    "estimate_chain",
    "posterior_marginals",
    "map_trajectory",
    # sequence (Lahar-style) queries
    "Pattern",
    "sequence_probability",
    # temporal analyses and nearest neighbours
    "FirstPassageResult",
    "first_passage_distribution",
    "expected_entry_time",
    "expected_visit_count",
    "nearest_neighbor_probabilities",
    # interval chains / clustering (Section V-C)
    "IntervalMarkovChain",
    "bound_exists_probability",
    "ChainCluster",
    "cluster_chains",
    "ClusteredThresholdProcessor",
    "ThresholdAnswer",
    # database
    "UncertainObject",
    "TrajectoryDatabase",
    "QueryEngine",
    "QueryResult",
    "RTree",
    "Rect",
    "ReachabilityPruner",
    "GeometricPrefilter",
    "save_chain",
    "load_chain",
    "save_database",
    "load_database",
    # errors
    "ReproError",
    "ValidationError",
    "NotStochasticError",
    "DimensionMismatchError",
    "StateSpaceError",
    "QueryError",
    "ObservationError",
    "InfeasibleEvidenceError",
    "BackendError",
    "SerializationError",
    "ExecutionError",
    "WorkerCrashError",
    "TaskTimeoutError",
    "SegmentLostError",
    "InjectedFaultError",
    "QuarantinedQueryError",
    "AdmissionRejected",
    "DegradedExecutionWarning",
]
