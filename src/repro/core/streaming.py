"""Incremental evaluation of standing sliding-window queries.

The paper's motivating workloads (iceberg tracking, traffic monitoring)
do not ask a window query once -- they re-issue it every tick as the
window slides forward and new sightings stream in.  Re-planning each
tick repeats the Section V-B backward pass over the full horizon, yet
the pass for the shifted window is a one-step extension of the previous
one: writing the backward vector of a window ``T`` from start time
``t_0 < min(T)`` as

    v_T(t_0) = M_minus^(min(T)-1-t_0) . w        (w = the window core)

shows that sliding every query time forward by ``s`` only prepends
``s`` more ``M_minus`` factors::

    v_{T+s}(t_0) = M_minus^s . v_T(t_0)

so a tick costs *one* sparse product over the tracked start-time
columns instead of an ``O(horizon)`` sweep -- and because the product
extends the exact same factor sequence the full sweep would execute,
the incremental values are bit-identical to re-evaluation from scratch
(asserted to 1e-12 in the test suite).

:class:`StreamingQueryEngine` registers standing queries
(:meth:`~StreamingQueryEngine.watch`, also available as
:meth:`repro.core.engine.QueryEngine.watch`) and returns
:class:`StandingQuery` handles whose :meth:`~StandingQuery.tick`

* pulls the database's mutation journal
  (:meth:`~repro.database.uncertain_db.TrajectoryDatabase.changes_since`)
  and patches its state for objects entering, leaving, or being
  re-sighted mid-stream;
* advances all tracked backward columns by ``stride`` sparse products;
* answers every single-observation object with one sparse GEMV per
  start-time group (the object's support pdf against the column);
* falls back to the exact PR-1 batched kernels
  (:func:`~repro.core.batch.batch_qb_exists` /
  :func:`~repro.core.batch.batch_exists_multi`) for objects the
  incremental identity does not cover: observations at or after the
  current window start, and Section VI multi-observation objects;
* reports a ``streaming`` stage on the executed
  :class:`~repro.core.planner.QueryPlan` with the per-tick candidate
  delta (objects whose BFS reachability threshold the sliding horizon
  crossed this tick).

Exists, for-all *and k-times* queries are supported (for-all through
the Section VII complement identity).  K-times windows use the
*suffix-count decomposition*: the backward block
``D(t)[s, k] = P(exactly k visits at query times > t | X_t = s)``
satisfies ``D(t) = M . E(t+1)`` (``E`` shifting region rows' counts up
at query times), is shift-invariant exactly like the exists backward
vector, and below the window extends by plain ``M`` products -- so the
ladder caches per-gap *C-blocks* ``rel[d] = M^d . W`` (``W`` the
:data:`~repro.exec.operators.KTIMES_CORE` window core, computed once
per standing query) and a tick costs ``stride`` sparse products per
chain, each carrying the ``|T_q|+1`` count columns, rather than a full
re-sweep.  Dead C-blocks are evicted per tick exactly like the exists
rungs, so memory stays bounded by the live gap spread.  Objects whose
observation lands at or inside the window fall back to the exact
batched :func:`~repro.core.batch.batch_ktimes_distribution` kernel
until the window slides past them; multi-observation objects are
rejected, matching the batch pipeline's Definition 4 semantics.

**Transactional ticks.**  A :meth:`StandingQuery.tick` either fully
commits -- ladder rungs extended, journal cursor advanced, tick
counter and window offset moved -- or rolls back to the pre-tick state
and re-raises: a snapshot of every mutable field (cheap pointer
copies; ladder vectors are never mutated in place) is restored on any
exception, so a failed tick can simply be retried and resyncs from
the database journal.  A standing query that keeps failing
(``quarantine_after`` consecutive tick failures, default 3) is
*quarantined* with the error recorded on :attr:`StandingQuery.error`;
ticking it raises
:class:`~repro.core.errors.QuarantinedQueryError` until
:meth:`StandingQuery.reset` rebuilds it from the database, and
:meth:`StreamingQueryEngine.tick_all` skips it instead of letting one
poisoned query take down the whole engine.
"""

from __future__ import annotations

import bisect
import dataclasses
import time as _time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.batch import (
    batch_exists_multi,
    batch_ktimes_distribution,
    batch_qb_exists,
)
from repro.core.errors import (
    BackendError,
    QuarantinedQueryError,
    QueryError,
)
from repro.core.plan_cache import PlanCache
from repro.core.planner import (
    CostModel,
    GroupFeatures,
    GroupPlan,
    PlanOptions,
    QueryPlan,
    StageStats,
)
from repro.core.query import (
    PSTExistsQuery,
    PSTForAllQuery,
    PSTKTimesQuery,
    PSTQuery,
    SpatioTemporalWindow,
)
from repro.database.objects import UncertainObject
from repro.database.pruning import ReachabilityPruner
from repro.database.uncertain_db import TrajectoryDatabase
from repro.exec.operators import (
    LADDER_EXTEND,
    POSTERIOR_COLLAPSE,
    ExecutionContext,
)

try:  # scipy is the production backend; pure-python installs fall back
    import scipy.sparse as _sp
except ImportError:  # pragma: no cover - exercised only without scipy
    _sp = None

__all__ = ["StreamingQueryEngine", "StandingQuery"]

_UNREACHABLE = int(np.iinfo(np.int64).max)


def _shift_window(
    window: SpatioTemporalWindow, offset: int
) -> SpatioTemporalWindow:
    """The window slid ``offset`` timestamps into the future."""
    if offset == 0:
        return window
    return SpatioTemporalWindow(
        window.region, frozenset(t + offset for t in window.times)
    )


class _StartGroup:
    """All single-observation objects of one chain sharing a start time.

    The group's support pdfs are stacked into one sparse ``(k, n)``
    matrix so a tick answers the whole group with a single sparse GEMV
    against the group's backward column.
    """

    def __init__(self, start: int) -> None:
        self.start = start
        self.ids: List[str] = []
        self.distributions: List["StateDistribution"] = []
        self.initials: List[np.ndarray] = []
        self._supports: List[np.ndarray] = []  # nonzero states/object
        self._weights: List[np.ndarray] = []
        self._stacked = None  # rebuilt lazily after mutations

    def add(
        self, object_id: str, distribution: "StateDistribution"
    ) -> None:
        vector = np.asarray(distribution.vector, dtype=float)
        support = np.nonzero(vector)[0]
        self.ids.append(object_id)
        self.distributions.append(distribution)
        self.initials.append(vector)
        self._supports.append(support)
        self._weights.append(vector[support])
        self._stacked = None

    def discard(self, object_id: str) -> bool:
        if object_id not in self.ids:
            return False
        index = self.ids.index(object_id)
        del self.ids[index]
        del self.distributions[index]
        del self.initials[index]
        del self._supports[index]
        del self._weights[index]
        self._stacked = None
        return True

    def clone(self) -> "_StartGroup":
        """A rollback copy: fresh lists, shared immutable elements."""
        twin = _StartGroup(self.start)
        twin.ids = list(self.ids)
        twin.distributions = list(self.distributions)
        twin.initials = list(self.initials)
        twin._supports = list(self._supports)
        twin._weights = list(self._weights)
        twin._stacked = self._stacked
        return twin

    def answers(self, column: np.ndarray) -> np.ndarray:
        """Per-object answers: the stacked pdfs times the column.

        ``column`` is the exists backward vector (``(n,)`` -> one
        ``P_exists`` per object) or a k-times C-block
        (``(n, |T_q|+1)`` -> one count distribution per object).
        """
        if self._stacked is None:
            if _sp is not None:
                counts = [s.size for s in self._supports]
                rows = np.repeat(np.arange(len(counts)), counts)
                self._stacked = _sp.csr_matrix(
                    (
                        np.concatenate(self._weights),
                        (rows, np.concatenate(self._supports)),
                    ),
                    shape=(len(self.initials), self.initials[0].size),
                )
            else:
                self._stacked = np.vstack(self.initials)
        result = np.asarray(self._stacked @ column, dtype=float)
        return result.reshape(-1) if column.ndim == 1 else result


class _ChainStream:
    """Incremental per-chain state of one standing query.

    Holds the chain's absorbing matrices (shared with the batch engine
    through the plan cache), the tracked backward columns -- one per
    distinct start time strictly before the current window -- and the
    shift-invariant *anchor* vector ``v(min(T)-1)`` from which columns
    for newly arriving start times are derived in ``O(gap)`` sparse
    products instead of a full backward sweep.
    """

    def __init__(
        self,
        chain_id: str,
        owner: "StandingQuery",
    ) -> None:
        self.chain_id = chain_id
        self.owner = owner
        self.chain = owner.engine.database.chain(chain_id)
        # the stream's backend is a per-chain plan decision, fixed at
        # construction (ticks must stay O(stride)); a runtime
        # BackendError flips it to scipy -- see StandingQuery.tick
        self.backend = owner._chain_backend(self.chain)
        if owner.kind == "ktimes":
            # the suffix-count ladder runs on the plain chain matrix;
            # the count dimension lives in the C-blocks, not in an
            # augmented construction
            self.matrices = None
        else:
            self.matrices = owner.engine.plan_cache.absorbing(
                self.chain, owner.region, self.backend
            )
        self.groups: Dict[int, _StartGroup] = {}
        self.multis: Dict[str, UncertainObject] = {}
        self.singles: Dict[str, int] = {}  # object_id -> start time
        # filtered posterior per multi object, as (time, pdf, number of
        # observations incorporated): once every observation precedes
        # the window, the object is Markov from this pdf and rides the
        # same backward columns as the singles (computed once per
        # re-sighting, not per tick).  The count detects backfilled
        # sightings below the cached time, which invalidate the pdf.
        self.posteriors: Dict[str, Tuple[int, np.ndarray, int]] = {}
        # the backward-vector ladder: rel[d] = M_minus^d . anchor,
        # where anchor = v(min(T)-1).  Shift invariance makes both
        # independent of the tick -- the column of start time t_0 under
        # the window at any tick is rel[min(T)-1-t_0] -- so one ladder
        # rung per slid timestamp serves every start time ever tracked.
        # Kept as a gap->vector dict so rungs no live start time can
        # reference are *evicted* after every tick: the footprint is
        # bounded by the live gap spread, not by how long the query
        # has been standing.
        self.rel: Dict[int, np.ndarray] = {}
        self._touched: set = set()  # gaps referenced this tick
        self.matvecs = 0  # sparse products spent, for EXPLAIN output

    # ------------------------------------------------------------------
    # transactional snapshot
    # ------------------------------------------------------------------
    def _snapshot(self) -> dict:
        """Every mutable field, copied one level deep.

        Shallow copies suffice: ladder rungs, posteriors and support
        arrays are replaced wholesale, never mutated in place, so a
        restored dict points at the untouched pre-tick values.
        """
        return {
            "groups": {
                start: group.clone()
                for start, group in self.groups.items()
            },
            "multis": dict(self.multis),
            "singles": dict(self.singles),
            "posteriors": dict(self.posteriors),
            "rel": dict(self.rel),
            "touched": set(self._touched),
            "matvecs": self.matvecs,
        }

    def _restore(self, state: dict) -> None:
        self.groups = state["groups"]
        self.multis = state["multis"]
        self.singles = state["singles"]
        self.posteriors = state["posteriors"]
        self.rel = state["rel"]
        self._touched = state["touched"]
        self.matvecs = state["matvecs"]

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add_object(self, obj: UncertainObject) -> None:
        if obj.has_multiple_observations():
            if self.owner.kind == "ktimes":
                raise QueryError(
                    "PSTkQ with multiple observations is not part of "
                    "the paper's framework; query the first "
                    "observation only"
                )
            self.multis[obj.object_id] = obj
            return
        start = obj.initial.time
        self.singles[obj.object_id] = start
        group = self.groups.get(start)
        if group is None:
            group = self.groups[start] = _StartGroup(start)
        group.add(obj.object_id, obj.initial.distribution)

    def remove_object(self, object_id: str) -> None:
        if object_id in self.multis:
            del self.multis[object_id]
            self.posteriors.pop(object_id, None)
            return
        start = self.singles.pop(object_id, None)
        if start is None:
            return
        group = self.groups.get(start)
        if group is not None:
            group.discard(object_id)
            if not group.ids:
                del self.groups[start]

    # ------------------------------------------------------------------
    # multi-observation posteriors (Lemma 1 forward filtering)
    # ------------------------------------------------------------------
    def _posterior(self, obj: UncertainObject) -> Tuple[int, np.ndarray]:
        """``(t_last, P(X_t_last | all observations))`` for a multi.

        Lemma 1 forward filtering through the shared
        :data:`~repro.exec.operators.POSTERIOR_COLLAPSE` operator.
        Because every observation precedes the query window when this
        is used, no query time interleaves the evidence and the object
        is exactly Markov from the returned pdf -- its window
        probability is the same backward-column dot a
        single-observation object pays.  Cached per re-sighting; a
        backfilled sighting below the cached time invalidates the
        cache and refilters from scratch.
        """
        observations = obj.observations
        t_last = observations.last.time
        cached = self.posteriors.get(obj.object_id)
        if cached is not None:
            cached_time, _, incorporated = cached
            upto = sum(
                1 for o in observations if o.time <= cached_time
            )
            if cached_time > t_last or upto != incorporated:
                # a sighting was backfilled below the cached time; the
                # cached pdf never folded it in -- refilter from scratch
                cached = None
        if cached is not None and cached[0] == t_last:
            return cached[0], cached[1]
        resume = (
            (cached[0], cached[1]) if cached is not None else None
        )
        t_last, vector = POSTERIOR_COLLAPSE(
            (observations, resume),
            self.chain,
            self.owner.region,
            self.backend,
            context=self.owner.context,
        )
        self.posteriors[obj.object_id] = (
            t_last, vector, len(observations)
        )
        return t_last, vector

    # ------------------------------------------------------------------
    # backward columns
    # ------------------------------------------------------------------
    def _ladder_matrix(self):
        """The matrix one rung extension multiplies by.

        ``M_minus`` for exists ladders (the absorbing prefix); the
        plain chain matrix for k-times C-block ladders (no absorption
        -- the count dimension rides in the block's columns).
        """
        if self.matrices is None:
            return self.chain.matrix
        return self.matrices.m_minus

    def _extend(self, base_gap: int, steps: int) -> None:
        """Fill rungs ``base_gap+1 .. base_gap+steps`` from ``base_gap``.

        Runs as the shared :data:`~repro.exec.operators.LADDER_EXTEND`
        operator; the dense fill keeps a tick's amortised cost at
        ``stride`` sparse products per chain, exactly like the
        unbounded ladder did.
        """
        rungs = LADDER_EXTEND(
            (self._ladder_matrix(), self.rel[base_gap], steps),
            self.chain,
            self.owner.region,
            self.backend,
            context=self.owner.context,
        )
        self.matvecs += steps
        for offset, rung in enumerate(rungs, start=1):
            self.rel[base_gap + offset] = rung

    def _seed_anchor(self, window: SpatioTemporalWindow) -> np.ndarray:
        """The shift-invariant rung-0 anchor for the current mode.

        Exists: the backward vector ``v(min(T)-1)`` (plan-cache
        shared).  K-times: the suffix-count core ``W = D(min(T)-1)``
        of :data:`~repro.exec.operators.KTIMES_CORE`.  Both are
        numerically identical for every slid window, so seeding
        happens once per standing query (plus after a full eviction).
        """
        if self.owner.kind == "ktimes":
            blocks = self.owner.engine.plan_cache.ktimes_blocks(
                self.chain,
                window,
                [window.t_start - 1],
                self.backend,
                context=self.owner.context,
            )
            return np.asarray(blocks[window.t_start - 1], dtype=float)
        anchor_start = window.t_start - 1
        vectors = self.owner.engine.plan_cache.backward_vectors(
            self.chain,
            window,
            [anchor_start],
            self.backend,
            context=self.owner.context,
        )
        return np.asarray(vectors[anchor_start], dtype=float)

    def ensure_column(
        self, start: int, window: SpatioTemporalWindow
    ) -> np.ndarray:
        """The backward column (or C-block) of ``start`` for the window.

        The column is ``rel[gap]`` with ``gap = min(T) - 1 - start``;
        the anchor ``rel[0]`` (``v(min(T)-1)`` for exists, the k-times
        core ``W`` -- see :meth:`_seed_anchor`) is numerically
        identical for every slid window (the whole backward pass
        shifts with the times), so the ladder is computed once and
        only *extended*: a tick of stride ``s`` deepens the largest
        live gap by ``s``, which costs ``s`` sparse products per chain
        -- independent of how many start times, arrivals, or
        re-sightings it serves.  A gap below every retained rung
        (possible only after eviction dropped the shallow end) is
        re-derived -- one shared backward pass for exists, an anchor
        reseed + extension for k-times -- exact either way, since
        every rung is a pure function of its gap.
        """
        gap = (window.t_start - 1) - start
        self._touched.add(gap)
        column = self.rel.get(gap)
        if column is not None:
            return column
        if not self.rel:
            # first use: seed the shift-invariant rung-0 anchor
            self.rel[0] = self._seed_anchor(window)
            if gap == 0:
                return self.rel[0]
        below = [g for g in self.rel if g < gap]
        if below:
            base_gap = max(below)
            self._extend(base_gap, gap - base_gap)
            return self.rel[gap]
        # eviction dropped every shallower rung
        if self.owner.kind == "ktimes":
            # reseed the core and extend down to this gap (bounded by
            # the window span plus the shallowest live gap)
            self.rel[0] = self._seed_anchor(window)
            if gap > 0:
                self._extend(0, gap)
            return self.rel[gap]
        # exists: one backward pass rebuilds this start's column
        vectors = self.owner.engine.plan_cache.backward_vectors(
            self.chain,
            window,
            [start],
            self.backend,
            context=self.owner.context,
        )
        column = np.asarray(vectors[start], dtype=float)
        self.rel[gap] = column
        return column

    def evict_ladder(self) -> int:
        """Drop rungs no live start time can reference; return count.

        Called after every tick with ``self._touched`` holding exactly
        the gaps the tick's live start times (and collapsed multi
        posteriors) referenced.  Live gaps only ever grow as the
        window slides, so rungs *below* the shallowest live gap are
        dead, and rungs above the deepest are leftovers of departed
        objects; the dense range in between is kept so per-tick
        extension stays ``O(stride)``.
        """
        if not self._touched:
            evicted = len(self.rel)
            self.rel.clear()
            return evicted
        low, high = min(self._touched), max(self._touched)
        dead = [g for g in self.rel if g < low or g > high]
        for gap in dead:
            del self.rel[gap]
        self._touched = set()
        return len(dead)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self, window: SpatioTemporalWindow
    ) -> Tuple[Dict[str, float], Dict[str, int]]:
        """Per-object answers for the current window."""
        if self.owner.kind == "ktimes":
            return self._evaluate_ktimes(window)
        values: Dict[str, float] = {}
        counters = {"stream": 0, "fallback": 0, "multi": 0}
        n = self.matrices.n_states
        # the standing query's BFS thresholds (observation time + BFS
        # distance into the region) are exact-safe: an object below
        # its threshold provably has probability 0, so the fallback
        # kernels only ever run on true candidates -- the same
        # reachability bound the batch pipeline's filter stage applies
        thresholds = self.owner._threshold_by_id
        t_end = window.t_end

        def reachable(object_id: str) -> bool:
            return thresholds.get(object_id, _UNREACHABLE) <= t_end

        fallback: List[Tuple[str, int, np.ndarray]] = []
        for start, group in sorted(self.groups.items()):
            if not group.ids:
                continue
            if start < window.t_start:
                column = self.ensure_column(start, window)
                answers = group.answers(column[:n])
                for object_id, answer in zip(group.ids, answers):
                    values[object_id] = float(answer)
                counters["stream"] += len(group.ids)
            else:
                for object_id, distribution in zip(
                    group.ids, group.distributions
                ):
                    if reachable(object_id):
                        fallback.append(
                            (object_id, start, distribution)
                        )
                    else:
                        values[object_id] = 0.0
        if fallback:
            # observations at/inside the window have no M_minus prefix
            # to extend; they take the exact batched backward kernel
            # until the window slides past them
            answers = batch_qb_exists(
                self.chain,
                [distribution for _, _, distribution in fallback],
                window,
                start_times=[start for _, start, _ in fallback],
                backend=self.backend,
                plan_cache=self.owner.engine.plan_cache,
                context=self.owner.context,
            )
            for (object_id, _, _), answer in zip(fallback, answers):
                values[object_id] = float(answer)
            counters["fallback"] = len(fallback)
        if self.multis:
            candidates = sorted(filter(reachable, self.multis))
            surviving = set(candidates)
            for object_id in self.multis:
                if object_id not in surviving:
                    values[object_id] = 0.0
            doubled: List[str] = []
            for object_id in candidates:
                obj = self.multis[object_id]
                if obj.observations.last.time < window.t_start:
                    # all evidence precedes the window: the object is
                    # Markov from its filtered posterior and pays one
                    # sparse dot, like any single-observation object
                    t_last, posterior = self._posterior(obj)
                    column = self.ensure_column(t_last, window)
                    support = np.nonzero(posterior)[0]
                    values[object_id] = float(
                        posterior[support] @ column[support]
                    )
                else:
                    doubled.append(object_id)
            if doubled:
                # evidence at/inside the window needs the full Section
                # VI doubled sweep (transient: the window slides past)
                answers = batch_exists_multi(
                    self.chain,
                    [self.multis[object_id].observations
                     for object_id in doubled],
                    window,
                    backend=self.backend,
                    plan_cache=self.owner.engine.plan_cache,
                    context=self.owner.context,
                )
                for object_id, answer in zip(doubled, answers):
                    values[object_id] = float(answer)
            counters["multi"] = len(candidates)
        return values, counters

    def _evaluate_ktimes(
        self, window: SpatioTemporalWindow
    ) -> Tuple[Dict[str, np.ndarray], Dict[str, int]]:
        """Per-object visit-count distributions for the current window.

        Start groups strictly before the window ride the C-block
        ladder: one stacked-pdf GEMM against ``rel[gap]`` answers the
        whole group.  Observations at or inside the window have no
        ``M`` prefix to extend and take the exact batched
        :func:`~repro.core.batch.batch_ktimes_distribution` kernel
        until the window slides past them; objects below their BFS
        reachability threshold are answered with the point mass at
        zero visits (the same exact-safe bound the batch pipeline's
        filter stage applies).
        """
        values: Dict[str, np.ndarray] = {}
        counters = {"stream": 0, "fallback": 0, "multi": 0}
        n_rows = window.duration + 1
        thresholds = self.owner._threshold_by_id
        t_end = window.t_end

        def reachable(object_id: str) -> bool:
            return thresholds.get(object_id, _UNREACHABLE) <= t_end

        def zero_visits() -> np.ndarray:
            distribution = np.zeros(n_rows, dtype=float)
            distribution[0] = 1.0
            return distribution

        fallback: List[Tuple[str, int, "StateDistribution"]] = []
        for start, group in sorted(self.groups.items()):
            if not group.ids:
                continue
            if start < window.t_start:
                block = self.ensure_column(start, window)
                answers = group.answers(block)
                for object_id, answer in zip(group.ids, answers):
                    values[object_id] = np.asarray(answer, dtype=float)
                counters["stream"] += len(group.ids)
            else:
                for object_id, distribution in zip(
                    group.ids, group.distributions
                ):
                    if reachable(object_id):
                        fallback.append(
                            (object_id, start, distribution)
                        )
                    else:
                        values[object_id] = zero_visits()
        if fallback:
            answers = batch_ktimes_distribution(
                self.chain,
                [distribution for _, _, distribution in fallback],
                window,
                start_times=[start for _, start, _ in fallback],
                backend=self.backend,
                plan_cache=self.owner.engine.plan_cache,
                context=self.owner.context,
            )
            for (object_id, _, _), answer in zip(fallback, answers):
                values[object_id] = np.array(answer, dtype=float)
            counters["fallback"] = len(fallback)
        return values, counters


class StandingQuery:
    """One registered sliding-window query; obtain via ``watch()``.

    Attributes:
        query: the base (tick-0) query.
        stride: timestamps the window advances per tick.
        ticks: committed ticks (a rolled-back tick does not count).
        resyncs: full rebuilds from the database (journal overflow or
            chain replacement).
        quarantined: True after ``quarantine_after`` consecutive tick
            failures; :meth:`tick` then raises
            :class:`~repro.core.errors.QuarantinedQueryError` until
            :meth:`reset`.
    """

    def __init__(
        self,
        engine: "StreamingQueryEngine",
        query: PSTQuery,
        stride: int = 1,
        faults=None,
        quarantine_after: int = 3,
        on_quarantine=None,
    ) -> None:
        if stride < 1:
            raise QueryError(
                f"stride must be positive, got {stride}"
            )
        if quarantine_after < 1:
            raise QueryError(
                f"quarantine_after must be positive, got "
                f"{quarantine_after}"
            )
        self.kind = "exists"
        self.k: Optional[int] = None
        if isinstance(query, PSTForAllQuery):
            complement = frozenset(
                range(engine.database.n_states)
            ) - query.region
            if not complement:
                raise QueryError(
                    "for-all region covers the whole space; the "
                    "probability is trivially 1 at every tick"
                )
            self.region = complement
            self.complemented = True
        elif isinstance(query, PSTKTimesQuery):
            self.kind = "ktimes"
            self.k = query.k
            self.region = query.region
            self.complemented = False
        elif isinstance(query, PSTExistsQuery):
            self.region = query.region
            self.complemented = False
        else:
            raise QueryError(
                f"unsupported standing query type {type(query)!r}"
            )
        query.window.validate_for(engine.database.n_states)
        self.engine = engine
        self.query = query
        self.stride = int(stride)
        self.ticks = 0
        self.faults = faults
        self.quarantine_after = int(quarantine_after)
        self.quarantined = False
        # notification hook fired once per quarantine transition (the
        # service tier surfaces it to the owning tenant); exceptions
        # it raises are swallowed so a broken observer cannot mask
        # the tick's original error
        self.on_quarantine = on_quarantine
        self.resyncs = 0
        self._failures = 0  # consecutive rolled-back ticks
        self._error: Optional[str] = None
        # per-tick operator timing sink (reset by every tick; the
        # executed plan carries the tick's per-operator totals)
        self.context = ExecutionContext(
            engine.plan_cache, engine.backend, faults=faults
        )
        self._offset = 0
        self._base = SpatioTemporalWindow(self.region, query.times)
        self._chains: Dict[str, _ChainStream] = {}
        # per object: the earliest t_end at which it can be non-zero
        # (observation time + BFS distance into the region); the sorted
        # copy turns per-tick candidate counting into one bisect
        self._threshold_by_id: Dict[str, int] = {}
        self._thresholds: List[int] = []
        self._active = 0
        self._synced_version = 0
        self._last_plan: Optional[QueryPlan] = None
        # backend falls (native -> scipy) recorded by the *next*
        # committed tick's plan; see the BackendError branch of tick()
        self._pending_degradations: List[str] = []
        self._initialize()

    # ------------------------------------------------------------------
    # public surface
    # ------------------------------------------------------------------
    @property
    def window(self) -> SpatioTemporalWindow:
        """The window the *next* tick will evaluate."""
        return _shift_window(self.query.window, self._offset)

    @property
    def error(self) -> Optional[str]:
        """The recorded error of the last rolled-back tick, if any."""
        return self._error

    def tick(self) -> "QueryResult":
        """Evaluate the current window, then slide it by ``stride``.

        Returns the same :class:`~repro.core.engine.QueryResult` a
        batch :meth:`~repro.core.engine.QueryEngine.evaluate` of the
        current window would return (values agree to 1e-12; asserted in
        the test suite), with the executed plan carrying a
        ``streaming`` stage whose detail records the tick number, the
        candidate delta, and the sparse products spent.

        The tick is transactional: on any exception every mutable
        field (ladder rungs, journal cursor, membership, tick counter,
        window offset) is restored to its pre-tick state and the
        exception re-raised -- the query is never left half-patched,
        and the next tick resyncs from the database journal.  After
        ``quarantine_after`` consecutive failures the query is
        quarantined and raises
        :class:`~repro.core.errors.QuarantinedQueryError` until
        :meth:`reset`.
        """
        from repro.core.engine import QueryResult

        if self.quarantined:
            raise QuarantinedQueryError(
                f"standing query is quarantined after "
                f"{self._failures} consecutive tick failures "
                f"(last error: {self._error}); call reset() to "
                f"rebuild it from the database"
            )
        snapshot = self._snapshot()
        started = _time.perf_counter()
        self.context = ExecutionContext(
            self.engine.plan_cache, self.engine.backend,
            faults=self.faults,
        )
        try:
            self._sync()
            if self.faults is not None:
                self.faults.fire("streaming:tick", tick=self.ticks)
            window = _shift_window(self._base, self._offset)
            matvecs_before = sum(
                stream.matvecs for stream in self._chains.values()
            )
            values: Dict[str, float] = {}
            counters = {"stream": 0, "fallback": 0, "multi": 0}
            stage_started = _time.perf_counter()
            for stream in self._chains.values():
                chain_values, chain_counters = stream.evaluate(window)
                values.update(chain_values)
                for key, count in chain_counters.items():
                    counters[key] += count
            if self.complemented:
                values = {
                    object_id: 1.0 - value
                    for object_id, value in values.items()
                }
            if self.kind == "ktimes" and self.k is not None:
                # a fixed k asks for one scalar, like evaluate()
                values = {
                    object_id: float(distribution[self.k])
                    for object_id, distribution in values.items()
                }
            evaluate_seconds = _time.perf_counter() - stage_started

            # drop ladder rungs no live start time can reference --
            # the memory bound the eviction regression test asserts
            rungs_evicted = sum(
                stream.evict_ladder()
                for stream in self._chains.values()
            )
            previously_active = self._active
            self._active = bisect.bisect_right(
                self._thresholds, window.t_end
            )
            matvecs = sum(
                stream.matvecs for stream in self._chains.values()
            ) - matvecs_before
            plan = self._build_plan(
                window,
                n_total=len(values),
                entered=self._active - previously_active,
                matvecs=matvecs,
                counters=counters,
                evaluate_seconds=evaluate_seconds,
                rungs_evicted=rungs_evicted,
            )
            if self.faults is not None:
                self.faults.fire("streaming:commit", tick=self.ticks)
            # ---- commit point: everything below is rollback-free ----
            self._last_plan = plan
            evaluated = _shift_window(self.query.window, self._offset)
            self.ticks += 1
            self._offset += self.stride
        except Exception as exc:
            self._restore(snapshot)
            if isinstance(exc, BackendError):
                fallen = [
                    stream
                    for stream in self._chains.values()
                    if stream.backend == "native"
                ]
                if fallen:
                    # same contract as the batch pipeline: the native
                    # kernels are an optimisation, never a correctness
                    # dependency -- flip the failing streams to scipy
                    # and re-run the tick (the rollback above restored
                    # every ladder; stream.backend is not part of the
                    # snapshot, so the flip survives the retry)
                    for stream in fallen:
                        stream.backend = "scipy"
                    self._pending_degradations.append(
                        "degraded native -> scipy after "
                        f"BackendError: {exc}"
                    )
                    return self.tick()
            self._failures += 1
            self._error = f"{type(exc).__name__}: {exc}"
            if self._failures >= self.quarantine_after:
                self.quarantined = True
                if self.on_quarantine is not None:
                    try:
                        self.on_quarantine(self)
                    except Exception:
                        pass  # observers never mask the tick error
            raise
        self._failures = 0
        self._error = None
        autosnapshot = getattr(
            self.engine.database, "maybe_autosnapshot", None
        )
        if callable(autosnapshot):
            # after the commit point: a sharded store folds its grown
            # journal overlay into fresh slabs once it crosses the
            # configured threshold, so long-running streams never let
            # the replay-on-open cost grow without bound
            autosnapshot()
        return QueryResult(
            # replace() keeps query-type-specific fields (e.g. the
            # fixed k of a PSTKTimesQuery) on the slid window
            query=dataclasses.replace(self.query, window=evaluated),
            method="streaming",
            values=values,
            elapsed_seconds=_time.perf_counter() - started,
            plan=plan,
        )

    def reset(self) -> "StandingQuery":
        """Revive a quarantined query: rebuild from the database.

        Clears the failure record and re-derives every chain stream,
        threshold and ladder from current database state (the same
        path a journal overflow takes); returns self for chaining.
        """
        self._failures = 0
        self._error = None
        self.quarantined = False
        self._rebuild()
        return self

    def explain(self) -> QueryPlan:
        """The plan executed by the most recent :meth:`tick`."""
        if self._last_plan is None:
            raise QueryError(
                "no tick has run yet; call tick() before explain()"
            )
        return self._last_plan

    # ------------------------------------------------------------------
    # transactional snapshot
    # ------------------------------------------------------------------
    def _snapshot(self) -> dict:
        """Pre-tick copy of all mutable state, one level deep."""
        return {
            "ticks": self.ticks,
            "offset": self._offset,
            "synced": self._synced_version,
            "active": self._active,
            "resyncs": self.resyncs,
            "thresholds": list(self._thresholds),
            "threshold_by_id": dict(self._threshold_by_id),
            "last_plan": self._last_plan,
            "chains": dict(self._chains),
            "chain_states": {
                chain_id: stream._snapshot()
                for chain_id, stream in self._chains.items()
            },
        }

    def _restore(self, state: dict) -> None:
        self.ticks = state["ticks"]
        self._offset = state["offset"]
        self._synced_version = state["synced"]
        self._active = state["active"]
        self.resyncs = state["resyncs"]
        self._thresholds = state["thresholds"]
        self._threshold_by_id = state["threshold_by_id"]
        self._last_plan = state["last_plan"]
        self._chains = state["chains"]
        for chain_id, stream in self._chains.items():
            stream._restore(state["chain_states"][chain_id])

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _initialize(self) -> None:
        database = self.engine.database
        self._synced_version = database.version
        for chain_id, objects in sorted(
            database.objects_by_chain().items()
        ):
            stream = self._chains[chain_id] = _ChainStream(
                chain_id, self
            )
            for obj in objects:
                stream.add_object(obj)
                self._track(obj)

    def _track(self, obj: UncertainObject) -> None:
        steps = self.engine.pruner.min_steps(obj, self.region)
        if steps >= _UNREACHABLE:
            return  # can never enter the region at any horizon
        threshold = obj.initial.time + steps
        self._threshold_by_id[obj.object_id] = threshold
        bisect.insort(self._thresholds, threshold)

    def _untrack(self, object_id: str) -> None:
        threshold = self._threshold_by_id.pop(object_id, None)
        if threshold is None:
            return
        index = bisect.bisect_left(self._thresholds, threshold)
        if (
            index < len(self._thresholds)
            and self._thresholds[index] == threshold
        ):
            del self._thresholds[index]

    def _sync(self) -> None:
        """Patch streaming state from the database mutation journal."""
        database = self.engine.database
        changes = database.changes_since(self._synced_version)
        if changes is None:
            # the bounded journal no longer covers our last sync
            self._rebuild()
            return
        self._synced_version = database.version
        for change in changes:
            if change.op == "chain":
                # a replaced model invalidates every derived artefact
                self._rebuild()
                return
            # drop any prior tracking of this id (no-op for fresh adds)
            for stream in self._chains.values():
                if (
                    change.object_id in stream.singles
                    or change.object_id in stream.multis
                ):
                    posterior = stream.posteriors.get(change.object_id)
                    stream.remove_object(change.object_id)
                    if change.op == "observe" and posterior:
                        # keep the filtered pdf: _posterior extends it
                        # (and detects backfills) instead of
                        # refiltering from the first observation
                        stream.posteriors[change.object_id] = posterior
                    break
            self._untrack(change.object_id)
            if change.op in ("add", "observe"):
                if change.object_id not in database:
                    continue
                obj = database.get(change.object_id)
                target = self._chains.get(obj.chain_id)
                if target is None:
                    target = self._chains[obj.chain_id] = _ChainStream(
                        obj.chain_id, self
                    )
                target.add_object(obj)
                self._track(obj)

    def _rebuild(self) -> None:
        """Re-derive all streaming state from current database state.

        The recovery path for journal overflow ("the bounded journal
        no longer covers our last sync"), chain replacement, and
        :meth:`reset` after quarantine; ``resyncs`` counts these.
        """
        self.resyncs += 1
        self._chains = {}
        self._threshold_by_id = {}
        self._thresholds = []
        self._active = 0
        self._initialize()

    def _chain_backend(self, chain) -> Optional[str]:
        """The linear-algebra backend one chain stream runs on.

        Decided once per stream, mirroring the batch planner's
        structural heuristic (:meth:`CostModel.best_backend`): an
        explicit engine backend always wins; otherwise only the
        k-times C-block ladder -- a dense ``(n, duration+1)`` GEMM per
        extension step -- is promoted to the native kernels, and only
        on chains dense enough for them to pay
        (``native_min_density``) and small enough to densify
        (``REPRO_NATIVE_DENSE_CAP``).  Exists ladders are single
        matvec extensions where sparse scipy products stay ahead.
        """
        engine_backend = self.engine.backend
        if engine_backend not in (None, "scipy"):
            return engine_backend
        if self.kind != "ktimes":
            return engine_backend
        try:
            from repro.linalg import native as native_kernels
            from repro.linalg.ops import available_backends
        except Exception:  # pragma: no cover - linalg always imports
            return engine_backend
        if "native" not in available_backends():
            return engine_backend
        model = CostModel()
        n = chain.n_states
        density = chain.nnz / max(1, n * n)
        if (
            density >= model.native_min_density
            and n * n <= native_kernels.dense_cap()
        ):
            return "native"
        return engine_backend

    def _build_plan(
        self,
        window: SpatioTemporalWindow,
        n_total: int,
        entered: int,
        matvecs: int,
        counters: Dict[str, int],
        evaluate_seconds: float,
        rungs_evicted: int = 0,
    ) -> QueryPlan:
        options = PlanOptions()
        plan = QueryPlan(
            kind=self.kind,
            window=window,
            requested_method="streaming",
            complemented=self.complemented,
            use_prefilter=False,
            use_bfs=False,
            parallel=False,
            max_workers=1,
            options=options,
            semantics="forall" if self.complemented else self.kind,
            groups=[
                GroupPlan(
                    chain_id=chain_id,
                    method="stream",
                    features=GroupFeatures(
                        n_single=len(stream.singles),
                        n_multi=len(stream.multis),
                        n_states=(
                            stream.matrices.size
                            if stream.matrices is not None
                            else stream.chain.n_states
                        ),
                        nnz=stream.chain.nnz,
                        horizon=max(
                            0,
                            window.t_end - min(
                                stream.groups, default=window.t_end
                            ),
                        ),
                        duration=window.duration,
                    ),
                    survivors=len(stream.singles) + len(stream.multis),
                    backend=stream.backend,
                )
                for chain_id, stream in sorted(self._chains.items())
            ],
        )
        plan.degradations = list(self._pending_degradations) + list(
            self.context.events
        )
        self._pending_degradations = []
        rungs = sum(
            len(stream.rel) for stream in self._chains.values()
        )
        plan.stages = [
            StageStats(
                "streaming",
                n_total,
                self._active,
                0.0,
                f"tick {self.ticks}, stride {self.stride}, "
                f"{entered:+d} candidates, {matvecs} sparse products, "
                f"{rungs} rungs ({rungs_evicted} evicted)",
            ),
            StageStats(
                "evaluate",
                self._active,
                self._active,
                evaluate_seconds,
                f"incremental={counters['stream']}, "
                f"fallback={counters['fallback']}, "
                f"multi={counters['multi']}",
            ),
        ]
        plan.operator_seconds = self.context.timings
        return plan


class StreamingQueryEngine:
    """Registers and drives standing sliding-window queries.

    Shares its :class:`~repro.core.plan_cache.PlanCache` and
    :class:`~repro.database.pruning.ReachabilityPruner` with a batch
    :class:`~repro.core.engine.QueryEngine` when constructed through
    :meth:`~repro.core.engine.QueryEngine.watch`, so matrices, backward
    vectors and BFS labellings built by either engine serve both.

    Args:
        database: the database standing queries run against.
        backend: linear-algebra backend name (default scipy).
        plan_cache: shared construction cache (private when omitted).
        pruner: shared reachability filter (private when omitted).
    """

    def __init__(
        self,
        database: TrajectoryDatabase,
        backend: Optional[str] = None,
        plan_cache: Optional[PlanCache] = None,
        pruner: Optional[ReachabilityPruner] = None,
    ) -> None:
        self.database = database
        self.backend = backend
        self.plan_cache = (
            plan_cache if plan_cache is not None else PlanCache()
        )
        self.pruner = pruner or ReachabilityPruner(database)
        self._standing: List[StandingQuery] = []

    @property
    def standing(self) -> Tuple[StandingQuery, ...]:
        """Every standing query registered through :meth:`watch`."""
        return tuple(self._standing)

    def watch(
        self,
        query: PSTQuery,
        stride: int = 1,
        faults=None,
        quarantine_after: int = 3,
        on_quarantine=None,
    ) -> StandingQuery:
        """Register a standing query; every :meth:`StandingQuery.tick`
        evaluates the current window and slides it ``stride`` forward.

        ``faults`` threads a
        :class:`~repro.exec.faults.FaultInjector` through the query's
        ticks; ``quarantine_after`` consecutive failed (rolled-back)
        ticks quarantine the query instead of failing forever.
        ``on_quarantine`` is called with the standing query when the
        quarantine trips (once per transition; exceptions it raises
        are swallowed) -- the service tier uses it to surface the
        quarantine to the owning tenant.
        """
        standing = StandingQuery(
            self,
            query,
            stride=stride,
            faults=faults,
            quarantine_after=quarantine_after,
            on_quarantine=on_quarantine,
        )
        self._standing.append(standing)
        return standing

    def tick_all(self) -> List[Optional["QueryResult"]]:
        """Tick every registered standing query; never raises.

        Returns one entry per registered query, in registration
        order: the tick's :class:`~repro.core.engine.QueryResult`, or
        ``None`` for a query that is quarantined or whose tick rolled
        back this round.  A failing query records its error
        (:attr:`StandingQuery.error`) and, after its
        ``quarantine_after`` threshold, stops being ticked -- one
        poisoned query cannot take down the other standing queries.
        """
        results: List[Optional["QueryResult"]] = []
        for standing in self._standing:
            if standing.quarantined:
                results.append(None)
                continue
            try:
                results.append(standing.tick())
            except Exception:
                # rolled back and recorded on the standing query; the
                # remaining queries still get their tick
                results.append(None)
        return results
