"""Probability distributions over discrete states.

A :class:`StateDistribution` is the paper's ``P(o, t)`` -- a row vector with
one probability per state (Section IV).  The class wraps a dense numpy
vector (distributions become dense after a few Markov transitions anyway)
and provides the operations the query processors need:

* construction from points, dicts, or arrays;
* one-step transition (Corollary 1) lives in :class:`repro.core.markov.MarkovChain`;
* Bayesian fusion of independent observations (Lemma 1):
  elementwise product followed by normalisation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Sequence, Tuple

import numpy as np

from repro.core.errors import (
    DimensionMismatchError,
    InfeasibleEvidenceError,
    ValidationError,
)

__all__ = ["StateDistribution"]

_TOLERANCE = 1e-9


class StateDistribution:
    """A probability distribution over ``n`` states.

    Instances are immutable by convention: all operations return new
    distributions.  The underlying vector is available as the read-only
    :attr:`vector` numpy array.

    Args:
        vector: non-negative weights, one per state.
        normalize: when True, rescale to sum one; when False the input must
            already sum to one within tolerance.
    """

    __slots__ = ("_vector",)

    def __init__(
        self, vector: Sequence[float], normalize: bool = False
    ) -> None:
        array = np.asarray(vector, dtype=float)
        if array.ndim != 1:
            raise ValidationError(
                f"distribution must be one-dimensional, got shape {array.shape}"
            )
        if array.size == 0:
            raise ValidationError("distribution over zero states")
        if np.any(array < -_TOLERANCE):
            worst = float(array.min())
            raise ValidationError(
                f"distribution has negative mass (min entry {worst})"
            )
        array = np.clip(array, 0.0, None)
        total = float(array.sum())
        if normalize:
            if total <= 0.0:
                raise InfeasibleEvidenceError(
                    "cannot normalize a zero-mass vector"
                )
            array = array / total
        elif abs(total - 1.0) > 1e-6:
            raise ValidationError(
                f"distribution mass is {total}, expected 1 "
                f"(pass normalize=True to rescale)"
            )
        array.setflags(write=False)
        self._vector = array

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def point(cls, n_states: int, state: int) -> "StateDistribution":
        """The degenerate distribution: all mass on one state."""
        if not (0 <= state < n_states):
            raise ValidationError(
                f"state {state} out of range [0, {n_states})"
            )
        vector = np.zeros(n_states, dtype=float)
        vector[state] = 1.0
        return cls(vector)

    @classmethod
    def uniform(
        cls, n_states: int, support: Iterable[int] = ()
    ) -> "StateDistribution":
        """Uniform over ``support`` (or over all states when empty)."""
        vector = np.zeros(n_states, dtype=float)
        states = list(support)
        if not states:
            states = list(range(n_states))
        for state in states:
            if not (0 <= state < n_states):
                raise ValidationError(
                    f"state {state} out of range [0, {n_states})"
                )
            vector[state] = 1.0
        return cls(vector, normalize=True)

    @classmethod
    def from_dict(
        cls, n_states: int, weights: Mapping[int, float], normalize: bool = False
    ) -> "StateDistribution":
        """Build from a sparse ``{state: probability}`` mapping."""
        vector = np.zeros(n_states, dtype=float)
        for state, weight in weights.items():
            if not (0 <= state < n_states):
                raise ValidationError(
                    f"state {state} out of range [0, {n_states})"
                )
            vector[state] += float(weight)
        return cls(vector, normalize=normalize)

    @classmethod
    def from_support(
        cls,
        n_states: int,
        states: Sequence[int],
        weights: Sequence[float],
        normalize: bool = False,
    ) -> "StateDistribution":
        """Build from parallel support/weight arrays (columnar storage).

        The vectorised sibling of :meth:`from_dict`: shard workers and
        the slab store hold distributions as ``(states, weights)``
        column pairs and rebuild dense vectors from whole array slices
        without a per-entry Python loop.
        """
        states = np.asarray(states, dtype=np.intp)
        weights = np.asarray(weights, dtype=float)
        if states.shape != weights.shape:
            raise ValidationError(
                f"{states.size} support states but {weights.size} weights"
            )
        if states.size and (
            states.min() < 0 or states.max() >= int(n_states)
        ):
            raise ValidationError(
                f"support states outside [0, {n_states})"
            )
        vector = np.zeros(int(n_states), dtype=float)
        vector[states] = weights
        return cls(vector, normalize=normalize)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def vector(self) -> np.ndarray:
        """The underlying (read-only) probability vector."""
        return self._vector

    @property
    def n_states(self) -> int:
        """Number of states the distribution ranges over."""
        return int(self._vector.size)

    def probability(self, state: int) -> float:
        """Probability of a single state."""
        if not (0 <= state < self.n_states):
            raise ValidationError(
                f"state {state} out of range [0, {self.n_states})"
            )
        return float(self._vector[state])

    def probability_of(self, region: Iterable[int]) -> float:
        """Total probability of a set of states."""
        states = list(region)
        if not states:
            return 0.0
        return float(self._vector[np.asarray(states, dtype=int)].sum())

    def support(self) -> Tuple[int, ...]:
        """States with non-zero probability, ascending."""
        return tuple(int(i) for i in np.nonzero(self._vector > 0.0)[0])

    def support_size(self) -> int:
        """Number of states with non-zero probability."""
        return int(np.count_nonzero(self._vector > 0.0))

    def mode(self) -> int:
        """The most probable state (lowest index on ties)."""
        return int(np.argmax(self._vector))

    def entropy(self) -> float:
        """Shannon entropy in bits (0 for a point distribution)."""
        positive = self._vector[self._vector > 0.0]
        return float(-(positive * np.log2(positive)).sum())

    def items(self) -> Iterator[Tuple[int, float]]:
        """Yield ``(state, probability)`` for the support."""
        for state in self.support():
            yield state, float(self._vector[state])

    def to_dict(self) -> Dict[int, float]:
        """Sparse ``{state: probability}`` view of the support."""
        return dict(self.items())

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def fuse(self, *others: "StateDistribution") -> "StateDistribution":
        """Combine with independent observations per Lemma 1 of the paper.

        The joint distribution of independent observations of the same
        object at the same time is the normalised elementwise product.

        Raises:
            InfeasibleEvidenceError: when the product has zero mass, i.e.
                the observations are contradictory under the model.
            DimensionMismatchError: when state counts differ.
        """
        product = self._vector.copy()
        for other in others:
            if other.n_states != self.n_states:
                raise DimensionMismatchError(
                    f"cannot fuse distributions over {self.n_states} "
                    f"and {other.n_states} states"
                )
            product *= other._vector
        total = float(product.sum())
        if total <= 0.0:
            raise InfeasibleEvidenceError(
                "observations are contradictory: fused mass is zero"
            )
        return StateDistribution(product / total)

    def restrict(self, region: Iterable[int]) -> "StateDistribution":
        """Condition on the object being inside ``region``.

        Zeroes mass outside the region and renormalises.
        """
        mask = np.zeros(self.n_states, dtype=float)
        for state in region:
            if not (0 <= state < self.n_states):
                raise ValidationError(
                    f"state {state} out of range [0, {self.n_states})"
                )
            mask[state] = 1.0
        product = self._vector * mask
        total = float(product.sum())
        if total <= 0.0:
            raise InfeasibleEvidenceError(
                "restriction removed all probability mass"
            )
        return StateDistribution(product / total)

    def total_variation_distance(self, other: "StateDistribution") -> float:
        """Total-variation distance ``0.5 * sum |p - q|``."""
        if other.n_states != self.n_states:
            raise DimensionMismatchError(
                f"cannot compare distributions over {self.n_states} "
                f"and {other.n_states} states"
            )
        return float(0.5 * np.abs(self._vector - other._vector).sum())

    def sample(self, rng: np.random.Generator) -> int:
        """Draw one state from the distribution."""
        return int(rng.choice(self.n_states, p=self._vector))

    def allclose(self, other: "StateDistribution", tol: float = 1e-9) -> bool:
        """Entrywise comparison within ``tol``."""
        return (
            self.n_states == other.n_states
            and bool(np.allclose(self._vector, other._vector, atol=tol))
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StateDistribution):
            return NotImplemented
        return self.n_states == other.n_states and bool(
            np.array_equal(self._vector, other._vector)
        )

    def __hash__(self) -> int:
        return hash((self.n_states, self._vector.tobytes()))

    def __repr__(self) -> str:
        entries = ", ".join(
            f"{state}: {probability:.4f}"
            for state, probability in list(self.items())[:6]
        )
        suffix = ", ..." if self.support_size() > 6 else ""
        return (
            f"StateDistribution(n={self.n_states}, {{{entries}{suffix}}})"
        )
