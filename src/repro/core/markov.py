"""Validated Markov chains over discrete state spaces.

The paper models every uncertain trajectory as a first-order, homogeneous
Markov chain (Definitions 5 and 6): a row-stochastic transition matrix
``M`` with ``M[i, j] = P(o(t+1) = s_j | o(t) = s_i)``.  All query
processing then reduces to vector--matrix products:

* Corollary 1: ``P(o, t+1) = P(o, t) . M``
* Corollary 2: ``P(o, t+m) = P(o, t) . M^m``

:class:`MarkovChain` wraps a sparse CSR transition matrix (scipy by
default, the pure-Python backend on request), validates stochasticity at
construction, and provides transition, reachability and stationary-
distribution utilities used by the query processors and the pruning layer.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.distribution import StateDistribution
from repro.core.errors import (
    DimensionMismatchError,
    NotStochasticError,
    ValidationError,
)
from repro.linalg.sparse import CSRMatrix

__all__ = ["MarkovChain"]

_ROW_SUM_TOLERANCE = 1e-8


class MarkovChain:
    """A homogeneous first-order Markov chain.

    Args:
        matrix: the row-stochastic single-step transition matrix.  Accepts a
            scipy sparse matrix, a dense array-like, or a
            :class:`repro.linalg.sparse.CSRMatrix`.
        validate: verify row-stochasticity (non-negative entries, each row
            summing to one).  Disable only for matrices produced by code
            that already guarantees the invariant.

    Raises:
        NotStochasticError: when validation fails.
    """

    __slots__ = (
        "_matrix",
        "_transpose_cache",
        "_successors_cache",
        "_fingerprint_cache",
    )

    def __init__(self, matrix, validate: bool = True) -> None:
        self._matrix = self._coerce(matrix)
        self._transpose_cache: Optional[sp.csr_matrix] = None
        self._successors_cache: Optional[List[np.ndarray]] = None
        self._fingerprint_cache: Optional[str] = None
        if validate:
            self.validate()

    @staticmethod
    def _coerce(matrix) -> sp.csr_matrix:
        if isinstance(matrix, CSRMatrix):
            coerced = sp.csr_matrix(
                (matrix.data, matrix.indices, matrix.indptr),
                shape=matrix.shape,
                dtype=float,
            )
        elif sp.issparse(matrix):
            coerced = matrix.tocsr().astype(float)
        else:
            dense = np.asarray(matrix, dtype=float)
            if dense.ndim != 2:
                raise ValidationError(
                    f"transition matrix must be 2-D, got shape {dense.shape}"
                )
            coerced = sp.csr_matrix(dense)
        if coerced.shape[0] != coerced.shape[1]:
            raise DimensionMismatchError(
                f"transition matrix must be square, got {coerced.shape}"
            )
        if coerced.shape[0] == 0:
            raise ValidationError("transition matrix over zero states")
        coerced.sort_indices()
        return coerced

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(
        cls, n_states: int, transitions: Mapping[int, Mapping[int, float]]
    ) -> "MarkovChain":
        """Build from nested ``{source: {target: probability}}`` mappings."""
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for source, targets in transitions.items():
            for target, probability in targets.items():
                rows.append(int(source))
                cols.append(int(target))
                vals.append(float(probability))
        matrix = sp.csr_matrix(
            (vals, (rows, cols)), shape=(n_states, n_states), dtype=float
        )
        return cls(matrix)

    @classmethod
    def identity(cls, n_states: int) -> "MarkovChain":
        """The chain in which every state is absorbing."""
        return cls(sp.identity(n_states, format="csr", dtype=float),
                   validate=False)

    # ------------------------------------------------------------------
    # validation / inspection
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Verify the matrix is row-stochastic; raise otherwise."""
        if self._matrix.nnz and float(self._matrix.data.min()) < 0.0:
            raise NotStochasticError(
                f"negative transition probability "
                f"{float(self._matrix.data.min())}"
            )
        row_sums = np.asarray(self._matrix.sum(axis=1)).ravel()
        bad = np.nonzero(np.abs(row_sums - 1.0) > _ROW_SUM_TOLERANCE)[0]
        if bad.size:
            first = int(bad[0])
            raise NotStochasticError(
                f"{bad.size} row(s) do not sum to 1; first offender: "
                f"row {first} sums to {row_sums[first]!r}"
            )

    @property
    def matrix(self) -> sp.csr_matrix:
        """The single-step transition matrix (scipy CSR)."""
        return self._matrix

    @property
    def n_states(self) -> int:
        """Number of states ``|S|``."""
        return int(self._matrix.shape[0])

    @property
    def nnz(self) -> int:
        """Number of stored transitions."""
        return int(self._matrix.nnz)

    def transition_probability(self, source: int, target: int) -> float:
        """Single-step probability ``P[source, target]``."""
        self._check_state(source)
        self._check_state(target)
        return float(self._matrix[source, target])

    def successors(self, state: int) -> List[int]:
        """States reachable from ``state`` in one step (sorted)."""
        self._check_state(state)
        if self._successors_cache is None:
            matrix = self._matrix
            self._successors_cache = [
                matrix.indices[matrix.indptr[i]:matrix.indptr[i + 1]]
                for i in range(self.n_states)
            ]
        return [int(j) for j in self._successors_cache[state]]

    def successor_distribution(self, state: int) -> StateDistribution:
        """Distribution over next states given the current state."""
        self._check_state(state)
        row = np.zeros(self.n_states, dtype=float)
        matrix = self._matrix
        lo, hi = matrix.indptr[state], matrix.indptr[state + 1]
        row[matrix.indices[lo:hi]] = matrix.data[lo:hi]
        return StateDistribution(row, normalize=True)

    def is_absorbing_state(self, state: int) -> bool:
        """Whether ``state`` transitions only to itself."""
        return self.successors(state) == [state]

    def _check_state(self, state: int) -> None:
        if not (0 <= state < self.n_states):
            raise ValidationError(
                f"state {state} out of range [0, {self.n_states})"
            )

    # ------------------------------------------------------------------
    # dynamics (Corollaries 1 and 2)
    # ------------------------------------------------------------------
    def step(self, distribution: StateDistribution) -> StateDistribution:
        """One transition: ``P(o, t+1) = P(o, t) . M`` (Corollary 1)."""
        if distribution.n_states != self.n_states:
            raise DimensionMismatchError(
                f"distribution over {distribution.n_states} states, "
                f"chain over {self.n_states}"
            )
        return StateDistribution(distribution.vector @ self._matrix,
                                 normalize=True)

    def propagate(
        self, distribution: StateDistribution, steps: int
    ) -> StateDistribution:
        """``m`` transitions: ``P(o, t+m) = P(o, t) . M^m`` (Corollary 2).

        Implemented as ``m`` successive vector--matrix products, which is
        the paper's evaluation strategy (and asymptotically cheaper than
        forming ``M^m`` explicitly for sparse ``M``).
        """
        if steps < 0:
            raise ValidationError(f"steps must be non-negative, got {steps}")
        vector = distribution.vector
        for _ in range(steps):
            vector = vector @ self._matrix
        return StateDistribution(vector, normalize=True)

    def marginals(
        self, initial: StateDistribution, horizon: int
    ) -> List[StateDistribution]:
        """``[P(o, 0), P(o, 1), ..., P(o, horizon)]`` in one forward sweep."""
        if horizon < 0:
            raise ValidationError(
                f"horizon must be non-negative, got {horizon}"
            )
        result = [initial]
        vector = initial.vector
        for _ in range(horizon):
            vector = vector @ self._matrix
            result.append(StateDistribution(vector, normalize=True))
        return result

    def power(self, exponent: int) -> sp.csr_matrix:
        """The ``m``-step transition matrix ``M^m`` (Chapman-Kolmogorov)."""
        if exponent < 0:
            raise ValidationError(
                f"exponent must be non-negative, got {exponent}"
            )
        result = sp.identity(self.n_states, format="csr", dtype=float)
        base = self._matrix
        remaining = exponent
        while remaining:
            if remaining & 1:
                result = (result @ base).tocsr()
            remaining >>= 1
            if remaining:
                base = (base @ base).tocsr()
        return result

    def transpose_matrix(self) -> sp.csr_matrix:
        """``M^T`` (cached) -- the query-based approach's workhorse."""
        if self._transpose_cache is None:
            self._transpose_cache = self._matrix.transpose().tocsr()
        return self._transpose_cache

    def fingerprint(self) -> str:
        """A content hash of the transition matrix (cached).

        Two chains with identical sparsity structure and values share the
        fingerprint, so cross-query caches keyed on it (see
        :mod:`repro.core.plan_cache`) survive database reloads and
        equal-by-value chain copies.
        """
        if self._fingerprint_cache is None:
            import hashlib

            matrix = self._matrix
            digest = hashlib.blake2b(digest_size=16)
            digest.update(repr(matrix.shape).encode())
            digest.update(np.ascontiguousarray(matrix.indptr).tobytes())
            digest.update(np.ascontiguousarray(matrix.indices).tobytes())
            digest.update(np.ascontiguousarray(matrix.data).tobytes())
            self._fingerprint_cache = digest.hexdigest()
        return self._fingerprint_cache

    # ------------------------------------------------------------------
    # reachability (used for pruning, Section V-C discussion)
    # ------------------------------------------------------------------
    def reachable_in(
        self, sources: Iterable[int], steps: int
    ) -> FrozenSet[int]:
        """States reachable in *exactly* ``steps`` transitions."""
        current: Set[int] = {self._checked(s) for s in sources}
        for _ in range(steps):
            nxt: Set[int] = set()
            for state in current:
                nxt.update(self.successors(state))
            current = nxt
            if not current:
                break
        return frozenset(current)

    def reachable_within(
        self, sources: Iterable[int], steps: int
    ) -> FrozenSet[int]:
        """States reachable in *at most* ``steps`` transitions."""
        seen: Set[int] = {self._checked(s) for s in sources}
        frontier = set(seen)
        for _ in range(steps):
            nxt: Set[int] = set()
            for state in frontier:
                for successor in self.successors(state):
                    if successor not in seen:
                        seen.add(successor)
                        nxt.add(successor)
            if not nxt:
                break
            frontier = nxt
        return frozenset(seen)

    def can_reach(
        self, sources: Iterable[int], region: Iterable[int], steps: int
    ) -> bool:
        """Whether any state of ``region`` is reachable within ``steps``.

        BFS with early exit; the pruning layer uses this to discard objects
        that cannot possibly satisfy a query.
        """
        target = frozenset(region)
        seen: Set[int] = {self._checked(s) for s in sources}
        if seen & target:
            return True
        frontier = set(seen)
        for _ in range(steps):
            nxt: Set[int] = set()
            for state in frontier:
                for successor in self.successors(state):
                    if successor in target:
                        return True
                    if successor not in seen:
                        seen.add(successor)
                        nxt.add(successor)
            if not nxt:
                return False
            frontier = nxt
        return False

    def _checked(self, state: int) -> int:
        self._check_state(state)
        return int(state)

    # ------------------------------------------------------------------
    # long-run behaviour
    # ------------------------------------------------------------------
    def stationary_distribution(
        self, tolerance: float = 1e-12, max_iterations: int = 100_000
    ) -> StateDistribution:
        """A stationary distribution found by power iteration.

        Converges for ergodic chains; for periodic chains the iteration
        averages successive iterates (Cesaro), which converges to a
        stationary distribution as well.

        Raises:
            ValidationError: when the iteration fails to converge.
        """
        vector = np.full(self.n_states, 1.0 / self.n_states)
        for _ in range(max_iterations):
            nxt = vector @ self._matrix
            averaged = 0.5 * (nxt + vector)  # damping handles periodicity
            averaged = averaged / averaged.sum()
            if float(np.abs(averaged - vector).max()) < tolerance:
                return StateDistribution(averaged, normalize=True)
            vector = averaged
        raise ValidationError(
            f"power iteration did not converge in {max_iterations} steps"
        )

    # ------------------------------------------------------------------
    # conversions / views
    # ------------------------------------------------------------------
    def to_pure(self) -> CSRMatrix:
        """The transition matrix as a pure-Python CSR matrix."""
        matrix = self._matrix
        return CSRMatrix(
            matrix.shape[0],
            matrix.shape[1],
            matrix.indptr.tolist(),
            matrix.indices.tolist(),
            matrix.data.tolist(),
            validate=False,
        )

    def to_dense(self) -> np.ndarray:
        """Dense copy of the transition matrix (small chains only)."""
        return self._matrix.toarray()

    def triples(self) -> Iterable[Tuple[int, int, float]]:
        """Yield ``(source, target, probability)`` for stored transitions."""
        coo = self._matrix.tocoo()
        for i, j, v in zip(coo.row, coo.col, coo.data):
            yield int(i), int(j), float(v)

    def restricted(
        self, states: Sequence[int]
    ) -> Tuple["MarkovChain", Dict[int, int]]:
        """Sub-chain over ``states``; mass leaving the set is dropped.

        Returns the restricted chain (rows renormalised -- rows that lose
        all mass become absorbing self-loops) and the mapping from original
        to restricted state indices.  Used by the reachability pruning of
        the object-based processor: when ``states`` is closed under
        transitions up to the query horizon, restriction is exact.
        """
        kept = sorted(set(int(s) for s in states))
        if not kept:
            raise ValidationError("cannot restrict to an empty state set")
        index_map = {old: new for new, old in enumerate(kept)}
        size = len(kept)
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        matrix = self._matrix
        for old in kept:
            new = index_map[old]
            lo, hi = matrix.indptr[old], matrix.indptr[old + 1]
            kept_mass = 0.0
            for j, v in zip(matrix.indices[lo:hi], matrix.data[lo:hi]):
                target = index_map.get(int(j))
                if target is not None:
                    rows.append(new)
                    cols.append(target)
                    vals.append(float(v))
                    kept_mass += float(v)
            if kept_mass <= 0.0:
                rows.append(new)
                cols.append(new)
                vals.append(1.0)
        sub = sp.csr_matrix(
            (vals, (rows, cols)), shape=(size, size), dtype=float
        )
        # renormalise rows that lost some (but not all) mass
        row_sums = np.asarray(sub.sum(axis=1)).ravel()
        scale = sp.diags(1.0 / row_sums)
        sub = (scale @ sub).tocsr()
        return MarkovChain(sub, validate=False), index_map

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MarkovChain):
            return NotImplemented
        if self.n_states != other.n_states:
            return False
        difference = (self._matrix - other._matrix).tocoo()
        return difference.nnz == 0 or bool(
            np.all(np.abs(difference.data) == 0.0)
        )

    def __repr__(self) -> str:
        return f"MarkovChain(n_states={self.n_states}, nnz={self.nnz})"
