"""Interval Markov chains and cluster-level query bounds (Section V-C).

The query-based approach assumes all objects share one chain.  For
heterogeneous databases the paper sketches the remedy:

    "a technique to speed up the query-based approach is to cluster
    objects with similar Markov-Chains, and represent each cluster by one
    approximated Markov-Chain, where each entry is a probability interval
    instead of a singular probability.  This approximated Markov-Chain
    can be used to perform pruning by detecting clusters of objects which
    must have (or cannot possibly have) a sufficiently high probability
    to satisfy the query predicate."

This module implements that machinery:

* :class:`IntervalMarkovChain` -- entrywise ``[lower, upper]`` bounds
  enclosing every chain of a cluster;
* :func:`bound_exists_probability` -- sound (not necessarily tight)
  bounds on the PST-exists probability of *any* member chain, computed
  by interval arithmetic over the paper's absorbing-matrix iteration;
* the :class:`ClusteredThresholdProcessor` in
  :mod:`repro.database.clustering` uses these bounds to accept or reject
  whole clusters for threshold queries and refines only the undecided
  ones.

Soundness argument: all quantities are non-negative, and the absorbing
TOP construction makes the exists-probability a *monotone* function of
every transition probability along paths into the window.  Propagating
the elementwise lower (upper) matrices therefore under- (over-)
estimates the mass arriving at TOP.  The resulting bounds are clamped to
``[0, 1]``; tightness degrades with horizon length, which is acceptable
for a pruning device (verified against exact per-chain answers in the
test suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.distribution import StateDistribution
from repro.core.errors import QueryError, ValidationError
from repro.core.markov import MarkovChain
from repro.core.query import SpatioTemporalWindow

__all__ = [
    "IntervalMarkovChain",
    "bound_exists_probability",
]


@dataclass
class IntervalMarkovChain:
    """Entrywise transition-probability intervals for a chain cluster.

    Attributes:
        lower: CSR matrix of per-entry lower bounds.
        upper: CSR matrix of per-entry upper bounds.
    """

    lower: sp.csr_matrix
    upper: sp.csr_matrix

    def __post_init__(self) -> None:
        if self.lower.shape != self.upper.shape:
            raise ValidationError(
                f"bound shapes differ: {self.lower.shape} vs "
                f"{self.upper.shape}"
            )
        if self.lower.shape[0] != self.lower.shape[1]:
            raise ValidationError(
                f"interval chain must be square, got {self.lower.shape}"
            )
        difference = (self.upper - self.lower).tocoo()
        if difference.nnz and float(difference.data.min()) < -1e-12:
            raise ValidationError(
                "lower bound exceeds upper bound in at least one entry"
            )

    @property
    def n_states(self) -> int:
        """Number of states."""
        return int(self.lower.shape[0])

    @classmethod
    def from_chains(
        cls, chains: Sequence[MarkovChain]
    ) -> "IntervalMarkovChain":
        """The tightest interval chain enclosing every given chain.

        Entry ``(i, j)`` gets ``[min_c P_c[i,j], max_c P_c[i,j]]``.
        """
        if not chains:
            raise ValidationError("need at least one chain")
        n = chains[0].n_states
        for chain in chains:
            if chain.n_states != n:
                raise ValidationError(
                    f"chains over {n} and {chain.n_states} states cannot "
                    f"be clustered"
                )
        lower = chains[0].matrix.copy()
        upper = chains[0].matrix.copy()
        for chain in chains[1:]:
            matrix = chain.matrix
            upper = upper.maximum(matrix)
            lower = lower.minimum(matrix)
        return cls(lower.tocsr(), upper.tocsr())

    def contains(self, chain: MarkovChain, tol: float = 1e-12) -> bool:
        """Whether every entry of ``chain`` lies inside the intervals."""
        if chain.n_states != self.n_states:
            return False
        matrix = chain.matrix
        over = (matrix - self.upper).tocoo()
        if over.nnz and float(over.data.max()) > tol:
            return False
        under = (self.lower - matrix).tocoo()
        if under.nnz and float(under.data.max()) > tol:
            return False
        return True

    def width(self) -> float:
        """Largest interval width -- 0 means all chains are identical."""
        difference = (self.upper - self.lower).tocoo()
        return float(difference.data.max()) if difference.nnz else 0.0

    def merge(self, other: "IntervalMarkovChain") -> "IntervalMarkovChain":
        """The smallest interval chain enclosing both operands."""
        if other.n_states != self.n_states:
            raise ValidationError(
                f"cannot merge interval chains over {self.n_states} and "
                f"{other.n_states} states"
            )
        return IntervalMarkovChain(
            self.lower.minimum(other.lower).tocsr(),
            self.upper.maximum(other.upper).tocsr(),
        )


def _split_columns(
    matrix: sp.csr_matrix, region: FrozenSet[int]
) -> Tuple[sp.csr_matrix, np.ndarray]:
    """``(M with region columns zeroed, per-row mass into the region)``."""
    n = matrix.shape[0]
    keep = np.ones(n, dtype=float)
    region_indices = np.fromiter(region, dtype=int, count=len(region))
    keep[region_indices] = 0.0
    outside = (matrix @ sp.diags(keep)).tocsr()
    into_region = np.asarray(
        matrix[:, region_indices].sum(axis=1)
    ).ravel()
    return outside, into_region


def bound_exists_probability(
    interval_chain: IntervalMarkovChain,
    initial: StateDistribution,
    window: SpatioTemporalWindow,
    start_time: int = 0,
) -> Tuple[float, float]:
    """Sound bounds on PST-exists for any chain inside the intervals.

    Runs the Section V-A absorbing iteration twice -- once with the lower
    matrices, once with the upper -- using interval arithmetic on the
    (non-negative) distribution vector.  The state-vector bounds are
    additionally clamped: no entry can exceed 1 and the TOP entry is
    monotone non-decreasing over time.

    Returns:
        ``(lower, upper)`` with
        ``lower <= P_exists(chain) <= upper`` for every member chain.
    """
    window.validate_for(interval_chain.n_states)
    if initial.n_states != interval_chain.n_states:
        raise ValidationError(
            f"initial distribution over {initial.n_states} states, "
            f"interval chain over {interval_chain.n_states}"
        )
    if window.t_start < start_time:
        raise QueryError(
            f"query time {window.t_start} precedes the observation at "
            f"t={start_time}"
        )
    region = window.region
    lower_out, lower_in = _split_columns(interval_chain.lower, region)
    upper_out, upper_in = _split_columns(interval_chain.upper, region)

    low = np.asarray(initial.vector, dtype=float).copy()
    high = low.copy()
    top_low = 0.0
    top_high = 0.0
    if start_time in window.times:
        region_indices = np.fromiter(region, dtype=int, count=len(region))
        top_low = float(low[region_indices].sum())
        top_high = top_low
        low[region_indices] = 0.0
        high[region_indices] = 0.0

    for time in range(start_time + 1, window.t_end + 1):
        if time in window.times:
            top_low = min(1.0, top_low + float(low @ lower_in))
            top_high = min(1.0, top_high + float(high @ upper_in))
            low = low @ lower_out
            high = high @ upper_out
        else:
            low = low @ interval_chain.lower
            high = high @ interval_chain.upper
        high = np.minimum(high, 1.0)
    return (
        float(min(1.0, max(0.0, top_low))),
        float(min(1.0, max(0.0, top_high))),
    )
