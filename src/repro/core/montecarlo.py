"""Monte-Carlo baseline -- Section VIII-A.

The paper's competitor "samples paths of each object and outputs the
fraction of the sampled paths which fulfill the query predicate".  Since
path sampling is a Bernoulli sequence, the standard deviation of the
estimate is ``sqrt(p (1 - p) / n)`` -- the accuracy bound the paper quotes
for 100 samples.

The sampler here is vectorised over paths: a precomputed row-CDF table
advances *all* samples one timestep with a single inverse-CDF lookup.
It is nonetheless still *orders of magnitude* slower than the exact
matrix approaches, which is precisely the headline result of
Figure 8(a).
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.distribution import StateDistribution
from repro.core.errors import (
    InfeasibleEvidenceError,
    QueryError,
    ValidationError,
)
from repro.core.markov import MarkovChain
from repro.core.observation import ObservationSet
from repro.core.query import SpatioTemporalWindow

__all__ = [
    "MonteCarloResult",
    "MonteCarloSampler",
    "mc_exists_probability",
    "mc_forall_probability",
    "mc_ktimes_distribution",
]


@dataclass(frozen=True)
class MonteCarloResult:
    """An MC estimate with its Bernoulli error bound.

    Attributes:
        estimate: the sampled fraction ``p_hat``.
        n_samples: number of sampled paths.
    """

    estimate: float
    n_samples: int

    @property
    def standard_error(self) -> float:
        """``sqrt(p_hat (1 - p_hat) / n)`` -- the paper's accuracy bound."""
        p = self.estimate
        return math.sqrt(max(p * (1.0 - p), 0.0) / self.n_samples)

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation CI, clipped to ``[0, 1]``."""
        margin = z * self.standard_error
        return (
            max(0.0, self.estimate - margin),
            min(1.0, self.estimate + margin),
        )


class MonteCarloSampler:
    """Vectorised possible-world sampler for one chain.

    The full row-CDF table -- one padded cumulative row per state -- is
    precomputed lazily on the first sampling call and cached, so every
    step advances *all* samples with a single vectorised inverse-CDF
    lookup instead of a per-unique-state mask loop.  Repeated queries
    against the same sampler reuse the table.

    Args:
        chain: the Markov model.
        seed: RNG seed (an explicit ``numpy.random.Generator`` may be
            passed instead via ``rng``).
        rng: optional generator overriding ``seed``.
    """

    # resident-memory budget for the padded CDF table (float64 cdf +
    # int32 targets = 12 bytes per states-x-widest-row entry); chains
    # too dense to fit fall back to grouped stepping
    _CDF_TABLE_MAX_BYTES = 128 * 1024 * 1024

    # process-wide CDF tables keyed by chain *fingerprint*: every
    # sampler instance over the same chain content shares one table
    # (each keeps its own RNG, so sharing never couples seeded
    # streams), and shard workers adopt tables the dispatcher
    # published to shared memory instead of re-tabulating per worker
    _TABLE_CACHE: "OrderedDict[str, Tuple[np.ndarray, np.ndarray]]" = (
        OrderedDict()
    )
    _TABLE_CACHE_SIZE = 8
    _TABLE_LOCK = threading.Lock()

    @classmethod
    def shared_cdf_tables(
        cls, chain: MarkovChain
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """The chain's ``(cdf, targets)`` tables, built at most once
        per process (None when the chain is too dense to tabulate).

        The parent dispatcher calls this to publish the tables into
        shared memory exactly once per chain.
        """
        return cls(chain)._full_cdf()

    @classmethod
    def adopt_cdf_tables(
        cls, fingerprint: str, cdf: np.ndarray, targets: np.ndarray
    ) -> None:
        """Install externally built tables under ``fingerprint``.

        Shard workers adopt the zero-copy shared-memory views the
        dispatcher published, so no worker ever re-tabulates a chain
        the parent already did.  Adopted views are treated as
        immutable (sampling only reads them).
        """
        with cls._TABLE_LOCK:
            if fingerprint not in cls._TABLE_CACHE:
                cls._TABLE_CACHE[fingerprint] = (cdf, targets)
            cls._TABLE_CACHE.move_to_end(fingerprint)
            while len(cls._TABLE_CACHE) > cls._TABLE_CACHE_SIZE:
                cls._TABLE_CACHE.popitem(last=False)

    def __init__(
        self,
        chain: MarkovChain,
        seed: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.chain = chain
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self._cdf_table: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._cdf_cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    def reseed(self, seed: Optional[int]) -> "MonteCarloSampler":
        """Replace the RNG, keeping the (expensive) cached CDF tables.

        The batched MC kernel gives every object its own stream seeded
        from a stable per-object offset, so an estimate does not depend
        on which *other* objects a filter stage removed; reseeding one
        shared sampler avoids re-tabulating the chain per object.
        """
        self.rng = np.random.default_rng(seed)
        return self

    def _full_cdf(self) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """``(cdf, targets)`` padded ``(n_states, max_row_nnz)`` tables.

        Row ``s`` holds the cumulative transition probabilities of state
        ``s`` followed by ``1.0`` padding, so for a uniform draw ``r``
        the sampled column is ``count(cdf[s] < r)`` -- padding is never
        selected because the last real entry is exactly one.  Returns
        None when the table would exceed the memory limit.
        """
        if self._cdf_table is None:
            matrix = self.chain.matrix
            n = self.chain.n_states
            counts = np.diff(matrix.indptr)
            width = int(counts.max())
            # the size gate comes before the shared cache so an
            # instance with a tightened limit still takes the grouped
            # fallback even when another sampler tabulated this chain
            if n * width * 12 > self._CDF_TABLE_MAX_BYTES:
                return None
            fingerprint = self.chain.fingerprint()
            with self._TABLE_LOCK:
                cached = self._TABLE_CACHE.get(fingerprint)
                if cached is not None:
                    self._TABLE_CACHE.move_to_end(fingerprint)
            if cached is not None:
                self._cdf_table = cached
                return self._cdf_table
            rows = np.repeat(np.arange(n), counts)
            columns = np.arange(matrix.nnz) - np.repeat(
                matrix.indptr[:-1], counts
            )
            weights = np.zeros((n, width), dtype=float)
            weights[rows, columns] = matrix.data
            cdf = np.cumsum(weights, axis=1)
            cdf /= cdf[:, -1:]  # guard against float drift
            targets = np.zeros((n, width), dtype=np.int32)
            targets[rows, columns] = matrix.indices
            self._cdf_table = (cdf, targets)
            self.adopt_cdf_tables(fingerprint, cdf, targets)
        return self._cdf_table

    def _row_cdf(self, state: int) -> Tuple[np.ndarray, np.ndarray]:
        cached = self._cdf_cache.get(state)
        if cached is not None:
            return cached
        matrix = self.chain.matrix
        lo, hi = matrix.indptr[state], matrix.indptr[state + 1]
        targets = matrix.indices[lo:hi].copy()
        weights = matrix.data[lo:hi]
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]  # guard against float drift
        entry = (targets, cdf)
        self._cdf_cache[state] = entry
        return entry

    def _advance(self, current: np.ndarray) -> np.ndarray:
        """One transition for all samples at once."""
        table = self._full_cdf()
        draws = self.rng.random(current.shape[0])
        if table is not None:
            cdf, targets = table
            picks = (cdf[current] < draws[:, None]).sum(axis=1)
            return targets[current, picks]
        # grouped fallback for chains too dense to tabulate
        nxt = np.empty(current.shape[0], dtype=np.int64)
        for state in np.unique(current):
            mask = current == state
            targets, cdf = self._row_cdf(int(state))
            nxt[mask] = targets[np.searchsorted(cdf, draws[mask])]
        return nxt

    def sample_paths(
        self, initial: StateDistribution, horizon: int, n_samples: int
    ) -> np.ndarray:
        """Sample ``n_samples`` paths of length ``horizon + 1``.

        Returns:
            An integer array of shape ``(n_samples, horizon + 1)``; row
            ``i`` is one possible world.
        """
        if n_samples <= 0:
            raise ValidationError(
                f"n_samples must be positive, got {n_samples}"
            )
        if horizon < 0:
            raise ValidationError(
                f"horizon must be non-negative, got {horizon}"
            )
        if initial.n_states != self.chain.n_states:
            raise ValidationError(
                f"initial distribution over {initial.n_states} states, "
                f"chain over {self.chain.n_states}"
            )
        paths = np.empty((n_samples, horizon + 1), dtype=np.int64)
        paths[:, 0] = self.rng.choice(
            initial.n_states, size=n_samples, p=initial.vector
        )
        for step in range(1, horizon + 1):
            paths[:, step] = self._advance(paths[:, step - 1])
        return paths

    # ------------------------------------------------------------------
    # query estimators
    # ------------------------------------------------------------------
    def _hit_counts(
        self,
        paths: np.ndarray,
        window: SpatioTemporalWindow,
        start_time: int,
    ) -> np.ndarray:
        region = np.zeros(self.chain.n_states, dtype=bool)
        region[list(window.region)] = True
        counts = np.zeros(paths.shape[0], dtype=np.int64)
        for time in window.times:
            counts += region[paths[:, time - start_time]]
        return counts

    def exists_probability(
        self,
        initial: StateDistribution,
        window: SpatioTemporalWindow,
        n_samples: int,
        start_time: int = 0,
    ) -> MonteCarloResult:
        """Estimate the PST-exists probability from sampled paths."""
        self._check_window(window, start_time)
        paths = self.sample_paths(
            initial, window.t_end - start_time, n_samples
        )
        counts = self._hit_counts(paths, window, start_time)
        return MonteCarloResult(float((counts > 0).mean()), n_samples)

    def forall_probability(
        self,
        initial: StateDistribution,
        window: SpatioTemporalWindow,
        n_samples: int,
        start_time: int = 0,
    ) -> MonteCarloResult:
        """Estimate the PST-for-all probability from sampled paths."""
        self._check_window(window, start_time)
        paths = self.sample_paths(
            initial, window.t_end - start_time, n_samples
        )
        counts = self._hit_counts(paths, window, start_time)
        return MonteCarloResult(
            float((counts == window.duration).mean()), n_samples
        )

    def ktimes_distribution(
        self,
        initial: StateDistribution,
        window: SpatioTemporalWindow,
        n_samples: int,
        start_time: int = 0,
    ) -> np.ndarray:
        """Estimate the full visit-count distribution from sampled paths."""
        self._check_window(window, start_time)
        paths = self.sample_paths(
            initial, window.t_end - start_time, n_samples
        )
        counts = self._hit_counts(paths, window, start_time)
        return (
            np.bincount(counts, minlength=window.duration + 1).astype(float)
            / n_samples
        )

    def exists_probability_multi(
        self,
        observations: ObservationSet,
        window: SpatioTemporalWindow,
        n_samples: int,
    ) -> MonteCarloResult:
        """Importance-weighted estimate under multiple observations.

        Paths are sampled from the first observation; each path is
        weighted by the likelihood of the later observations at the path's
        states (self-normalised importance sampling of Equation 1).
        """
        first = observations.first
        self._check_window(window, first.time)
        final_time = max(window.t_end, observations.last.time)
        paths = self.sample_paths(
            first.distribution, final_time - first.time, n_samples
        )
        weights = np.ones(n_samples, dtype=float)
        for observation in observations.after(first.time):
            column = paths[:, observation.time - first.time]
            weights *= observation.distribution.vector[column]
        total = float(weights.sum())
        if total <= 0.0:
            raise InfeasibleEvidenceError(
                "all sampled paths are inconsistent with the observations; "
                "increase n_samples or check the observations"
            )
        region = np.zeros(self.chain.n_states, dtype=bool)
        region[list(window.region)] = True
        hit = np.zeros(n_samples, dtype=bool)
        for time in window.times:
            hit |= region[paths[:, time - first.time]]
        # with self-normalised importance weights the Bernoulli error
        # bound applies to Kish's effective sample size, not n_samples
        effective = int(max(1, round(total**2 / float((weights**2).sum()))))
        return MonteCarloResult(
            float((weights * hit).sum() / total), effective
        )

    def _check_window(
        self, window: SpatioTemporalWindow, start_time: int
    ) -> None:
        window.validate_for(self.chain.n_states)
        if window.t_start < start_time:
            raise QueryError(
                f"query time {window.t_start} precedes the observation "
                f"at t={start_time}"
            )


def mc_exists_probability(
    chain: MarkovChain,
    initial: StateDistribution,
    window: SpatioTemporalWindow,
    n_samples: int = 100,
    seed: Optional[int] = None,
    start_time: int = 0,
) -> MonteCarloResult:
    """One-shot MC PST-exists estimate (paper default: 100 samples)."""
    sampler = MonteCarloSampler(chain, seed=seed)
    return sampler.exists_probability(
        initial, window, n_samples, start_time
    )


def mc_forall_probability(
    chain: MarkovChain,
    initial: StateDistribution,
    window: SpatioTemporalWindow,
    n_samples: int = 100,
    seed: Optional[int] = None,
    start_time: int = 0,
) -> MonteCarloResult:
    """One-shot MC PST-for-all estimate."""
    sampler = MonteCarloSampler(chain, seed=seed)
    return sampler.forall_probability(
        initial, window, n_samples, start_time
    )


def mc_ktimes_distribution(
    chain: MarkovChain,
    initial: StateDistribution,
    window: SpatioTemporalWindow,
    n_samples: int = 100,
    seed: Optional[int] = None,
    start_time: int = 0,
) -> np.ndarray:
    """One-shot MC visit-count distribution estimate."""
    sampler = MonteCarloSampler(chain, seed=seed)
    return sampler.ktimes_distribution(
        initial, window, n_samples, start_time
    )
