"""Staged filter--refinement execution of query plans.

A :class:`~repro.core.planner.QueryPlan` runs as three stages, each of
which can only *narrow* the candidate set (the EXPLAIN stage counts are
monotonically non-increasing by construction):

1. **prefilter** -- the per-chain STR R-tree of
   :class:`~repro.database.pruning.GeometricPrefilter` is probed with
   the query MBR expanded by the chain's exact displacement bound times
   the horizon.  Objects outside provably cannot intersect the window
   and are answered with the query's zero element immediately.
2. **bfs** -- the exact Section V-C reachability filter
   (:class:`~repro.database.pruning.ReachabilityPruner`): one reverse
   BFS per ``(chain, region, horizon)``, cached across queries, then an
   ``O(|support|)`` check per candidate.
3. **evaluate** -- the surviving objects of each chain group run
   through the shared operator layer (:mod:`repro.exec.operators`)
   with the group's planned method, dispatched per the plan:
   ``serial``, ``thread`` (chain groups across a
   :class:`~concurrent.futures.ThreadPoolExecutor` sharing the
   engine's thread-safe plan cache) or ``process`` (chain groups *and*
   within-chain object shards across the shared-memory worker pool of
   :mod:`repro.exec.dispatch`).

Every stage and kernel call runs through the operators' timing hooks;
the per-operator totals land on ``plan.operator_seconds`` (worker
timings included), which ``QueryPlan.describe()`` renders.

Both filters are *safe* -- they never remove an object whose true
answer is non-zero -- and the kernels are exact, so pipeline output is
identical (to the last bit) to unfiltered forced-method evaluation;
the test suite asserts 1e-12 parity plus the randomized safety
property.

**Degradation.**  The evaluate stage is fault-tolerant: when the
supervised process tier exhausts its retries
(:class:`~repro.core.errors.ExecutionError` from
:mod:`repro.exec.dispatch`), the stage falls back to the thread tier,
and from there to serial -- the same exact kernels, so the query still
returns the exact answer.  Each fall is recorded on
``plan.degradations`` (rendered by ``QueryPlan.describe()``) and
warned as :class:`~repro.core.errors.DegradedExecutionWarning`.
"""

from __future__ import annotations

import time as _time
import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.core.batch import (
    batch_exists_multi,
    batch_ktimes_distribution,
    batch_mc_exists,
    batch_ob_exists,
    batch_qb_exists,
)
from repro.core.errors import (
    BackendError,
    DegradedExecutionWarning,
    ExecutionError,
    QueryError,
)
from repro.core.planner import CostModel, GroupPlan, QueryPlan, StageStats
from repro.core.query import PSTKTimesQuery
from repro.database.objects import UncertainObject
from repro.database.pruning import ReachabilityPruner
from repro.exec.operators import (
    BFS_PRUNE,
    BUILD_ABSORBING,
    PREFILTER,
    ExecutionContext,
)

__all__ = ["QueryPipeline"]

ResultValue = Union[float, np.ndarray]


class QueryPipeline:
    """Executes query plans as filter -> refine stages.

    Args:
        database: the database the plans run against.
        plan_cache: shared (thread-safe) construction cache.
        backend: linear-algebra backend name.
        pruner: reachability filter to reuse across queries; a private
            one is created when omitted.  Its per-``(chain, region,
            horizon)`` BFS labellings amortise across a monitoring
            workload exactly like the plan cache's matrices.
    """

    def __init__(
        self,
        database,
        plan_cache=None,
        backend: Optional[str] = None,
        pruner: Optional[ReachabilityPruner] = None,
    ) -> None:
        self.database = database
        self.plan_cache = plan_cache
        self.backend = backend
        self.pruner = pruner or ReachabilityPruner(database)

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def execute(
        self, plan: QueryPlan, query=None
    ) -> Dict[str, ResultValue]:
        """Run ``plan`` and return per-object values.

        Filter stages answer eliminated objects with the query's zero
        element (probability 0, or the point-mass-at-zero count
        distribution for k-times).  ``plan.stages``,
        ``plan.operator_seconds`` and the per-group execution fields
        are filled in place -- the plan doubles as the EXPLAIN ANALYZE
        artefact.
        """
        # semantic validation must not depend on what gets pruned: the
        # kernels reject these inputs, so a filtered run must too
        for group in plan.groups:
            for obj in group.objects:
                start = obj.initial.time
                if plan.window.t_start < start:
                    raise QueryError(
                        f"query time {plan.window.t_start} precedes "
                        f"the observation at t={start}; extrapolation "
                        f"queries need all query times >= the "
                        f"observation time"
                    )
        if plan.kind == "ktimes":
            if not isinstance(query, PSTKTimesQuery):
                raise QueryError(
                    "k-times plans need the originating PSTKTimesQuery"
                )
            for group in plan.groups:
                for obj in group.objects:
                    if obj.has_multiple_observations():
                        raise QueryError(
                            "PSTkQ with multiple observations is not "
                            "part of the paper's framework; query the "
                            "first observation only"
                        )

        context = ExecutionContext(
            self.plan_cache, self.backend,
            faults=plan.options.faults,
        )
        values: Dict[str, ResultValue] = {}
        survivors: Dict[str, List[UncertainObject]] = {
            group.chain_id: list(group.objects) for group in plan.groups
        }
        zero = self._zero_factory(plan, query)
        plan.stages = []
        plan.degradations = []

        self._stage_prefilter(plan, survivors, values, zero, context)
        self._stage_bfs(plan, survivors, values, zero, context)
        self._stage_evaluate(plan, survivors, values, query, context)
        plan.operator_seconds = context.timings
        # recovery events (pool rebuilds, retries, tier falls) land on
        # the plan so EXPLAIN surfaces what execution had to survive
        plan.degradations.extend(context.events)
        return values

    # ------------------------------------------------------------------
    # stage 1: R-tree geometric prefilter
    # ------------------------------------------------------------------
    def _stage_prefilter(
        self,
        plan: QueryPlan,
        survivors: Dict[str, List[UncertainObject]],
        values: Dict[str, ResultValue],
        zero: Callable[[], ResultValue],
        context: ExecutionContext,
    ) -> None:
        entering = sum(len(objs) for objs in survivors.values())
        started = _time.perf_counter()
        nodes_visited = 0
        available = False
        if plan.use_prefilter:
            for group in plan.groups:
                objects = survivors[group.chain_id]
                if not objects:
                    continue
                prefilter = self.database.geometric_prefilter(
                    group.chain_id
                )
                if prefilter is None:
                    continue
                available = True
                min_start = min(obj.initial.time for obj in objects)
                ids, visited = PREFILTER(
                    (prefilter, plan.window, min_start),
                    region=plan.window.region,
                    context=context,
                )
                nodes_visited += visited
                keep = set(ids)
                kept: List[UncertainObject] = []
                for obj in objects:
                    if obj.object_id in keep:
                        kept.append(obj)
                    else:
                        values[obj.object_id] = zero()
                survivors[group.chain_id] = kept
        remaining = sum(len(objs) for objs in survivors.values())
        if not plan.use_prefilter:
            detail = "off"
        elif available:
            detail = f"{nodes_visited} R-tree nodes"
        else:
            detail = "no geometry"
        plan.stages.append(
            StageStats(
                "prefilter",
                entering,
                remaining,
                _time.perf_counter() - started,
                detail,
            )
        )

    # ------------------------------------------------------------------
    # stage 2: exact BFS reachability refinement
    # ------------------------------------------------------------------
    def _stage_bfs(
        self,
        plan: QueryPlan,
        survivors: Dict[str, List[UncertainObject]],
        values: Dict[str, ResultValue],
        zero: Callable[[], ResultValue],
        context: ExecutionContext,
    ) -> None:
        entering = sum(len(objs) for objs in survivors.values())
        started = _time.perf_counter()
        if plan.use_bfs:
            for group in plan.groups:
                kept, removed = BFS_PRUNE(
                    (self.pruner, survivors[group.chain_id], plan.window),
                    region=plan.window.region,
                    context=context,
                )
                for obj in removed:
                    values[obj.object_id] = zero()
                survivors[group.chain_id] = kept
        remaining = sum(len(objs) for objs in survivors.values())
        plan.stages.append(
            StageStats(
                "bfs",
                entering,
                remaining,
                _time.perf_counter() - started,
                "" if plan.use_bfs else "off",
            )
        )

    # ------------------------------------------------------------------
    # stage 3: batched exact/MC refinement per chain group
    # ------------------------------------------------------------------
    def _stage_evaluate(
        self,
        plan: QueryPlan,
        survivors: Dict[str, List[UncertainObject]],
        values: Dict[str, ResultValue],
        query,
        context: ExecutionContext,
    ) -> None:
        entering = sum(len(objs) for objs in survivors.values())
        started = _time.perf_counter()
        seed_index = self._seed_index(plan)

        mode = plan.dispatch if plan.parallel else "serial"
        pool_tasks: Optional[int] = None
        if mode == "process":
            try:
                pool_tasks = self._evaluate_processes(
                    plan, survivors, values, query, context, seed_index
                )
            except ExecutionError as error:
                # supervised retries exhausted (crash / timeout / lost
                # segment): same exact kernels, one tier down
                pool_tasks = None
                self._degrade(
                    context,
                    "process",
                    "thread" if len(plan.groups) > 1 else "serial",
                    error,
                )
            except BackendError as error:
                # native kernels failed in the parent-side pool prep:
                # pin every native group back to scipy and re-run the
                # whole stage one tier down
                pool_tasks = None
                self._degrade(context, "native", "scipy", error)
                for group in plan.groups:
                    if group.backend == "native":
                        group.backend = "scipy"
            if pool_tasks is None:  # unavailable: degrade gracefully
                mode = "thread" if len(plan.groups) > 1 else "serial"

        if mode != "process":
            def run_group(group: GroupPlan) -> Dict[str, ResultValue]:
                objects = survivors[group.chain_id]
                group_started = _time.perf_counter()
                out: Dict[str, ResultValue] = {}
                if objects:
                    chain = self.database.chain(group.chain_id)

                    def kernel() -> Dict[str, ResultValue]:
                        if plan.kind == "ktimes":
                            return self._ktimes_kernel(
                                chain, group, objects, plan, query,
                                seed_index, context,
                            )
                        return self._exists_kernel(
                            chain, group, objects, plan, seed_index,
                            context,
                        )

                    try:
                        out = kernel()
                    except BackendError as error:
                        if group.backend != "native":
                            raise
                        # compiled kernels unusable at runtime (import
                        # or compile failure): same exact kernels on
                        # the scipy products, answer unchanged
                        self._degrade(context, "native", "scipy", error)
                        group.backend = "scipy"
                        out = kernel()
                group.survivors = len(objects)
                group.elapsed_seconds = (
                    _time.perf_counter() - group_started
                )
                return out

            busy = [
                group
                for group in plan.groups
                if survivors[group.chain_id]
            ]
            if mode == "thread" and len(busy) > 1:
                try:
                    with ThreadPoolExecutor(
                        max_workers=plan.max_workers
                    ) as pool:
                        for out in pool.map(run_group, plan.groups):
                            values.update(out)
                except ExecutionError as error:
                    self._degrade(context, "thread", "serial", error)
                    mode = "serial"
                    for group in plan.groups:
                        values.update(run_group(group))
            else:
                mode = "serial"
                for group in plan.groups:
                    values.update(run_group(group))

        if mode == "process":
            if plan.store_stats:
                shards = plan.store_stats.get("shards", 0)
                detail_mode = (
                    f"store-scatter x{plan.max_workers} "
                    f"({shards} shard" + ("s" if shards != 1 else "")
                    + ")"
                )
            else:
                # a process plan whose surviving work was all
                # parent-side (k-times MC) must not claim pool
                # execution in EXPLAIN
                detail_mode = (
                    f"process x{plan.max_workers} "
                    f"({pool_tasks} pool task"
                    + ("s" if pool_tasks != 1 else "")
                    + ")"
                    if pool_tasks
                    else "process (parent-only)"
                )
        elif mode == "thread":
            detail_mode = f"thread x{plan.max_workers}"
        else:
            detail_mode = "serial"
        methods = ",".join(
            sorted({
                group.method
                for group in plan.groups
                if survivors[group.chain_id] or group.survivors
            })
        ) or "-"
        plan.stages.append(
            StageStats(
                "evaluate",
                entering,
                entering,
                _time.perf_counter() - started,
                f"{detail_mode}, method={methods}",
            )
        )

    def _evaluate_processes(
        self,
        plan: QueryPlan,
        survivors: Dict[str, List[UncertainObject]],
        values: Dict[str, ResultValue],
        query,
        context: ExecutionContext,
        seed_index: Optional[Dict[str, int]],
    ) -> Optional[int]:
        """Process-pool evaluation; None when unavailable here, else
        the number of group tasks actually shipped to the pool.

        A database that shards its own storage
        (``supports_shard_scatter``) takes the store-scatter path:
        persistent workers attach the store's slabs zero-copy and run
        the whole prefilter -> BFS -> kernel pipeline shard-local
        (:meth:`_evaluate_store_scatter`).  Otherwise single-
        observation qb/ob objects and whole k-times chain groups ship
        to the shared-memory workers (within-chain shards for the
        stacked OB and CT sweeps), multi-observation groups ship as
        stacked observation rows, and exists-MC groups ship with
        their published CDF tables and per-object seeds; only
        k-times-MC -- per-object resampling with no batched kernel --
        stays in the parent.  Parity is unconditional either way.
        Each group's ``elapsed_seconds`` becomes the summed
        worker-side shard seconds plus any parent-side kernel time.
        """
        from repro.exec import dispatch as _dispatch

        if not _dispatch.process_dispatch_available():
            return None
        if self.backend not in (None, "scipy"):
            return None

        if getattr(self.database, "supports_shard_scatter", False):
            scattered = self._evaluate_store_scatter(
                plan, survivors, values, query, context, seed_index
            )
            if scattered is not None:
                return scattered

        # the model the *planner* resolved (per-query override or
        # engine default) -- execution must shard by the same knobs
        model = plan.cost_model or plan.options.cost_model or CostModel()
        tasks = []
        task_groups: List[GroupPlan] = []
        elapsed: Dict[str, float] = {}
        parent_only: List[GroupPlan] = []
        for group in plan.groups:
            objects = survivors[group.chain_id]
            group.survivors = len(objects)
            elapsed[group.chain_id] = 0.0
            if not objects:
                continue
            chain = self.database.chain(group.chain_id)
            group_backend = group.backend or self.backend
            if group.method == "mc":
                if plan.kind == "ktimes":
                    # per-object resampling, no batched kernel to
                    # shard: the parent's sampler serves the group
                    parent_only.append(group)
                    continue
                tasks.append((
                    chain, None, objects, "mc", group_backend,
                    {
                        "n_samples": plan.options.n_samples,
                        "seeds": self._seeds(
                            objects, plan, seed_index
                        ),
                    },
                ))
                task_groups.append(group)
                continue
            if plan.kind == "ktimes":
                # the stacked CT sweep needs only the chain CSR (the
                # count dimension lives in the stack, not a matrix)
                tasks.append((chain, None, objects, "ct", group_backend))
                task_groups.append(group)
                continue
            singles = [
                obj for obj in objects
                if not obj.has_multiple_observations()
            ]
            multis = [
                obj for obj in objects
                if obj.has_multiple_observations()
            ]
            if singles:
                matrices = BUILD_ABSORBING(
                    None, chain, plan.window.region, group_backend,
                    context=context, plan_cache=self.plan_cache,
                )
                tasks.append(
                    (chain, matrices, singles, group.method,
                     group_backend)
                )
                task_groups.append(group)
            if multis:
                # Section VI groups ship as stacked observation rows
                # and run the doubled-space sweep worker-side
                tasks.append(
                    (chain, None, multis, "multi", group_backend)
                )
                task_groups.append(group)
        for group in parent_only:
            chain = self.database.chain(group.chain_id)
            objects = survivors[group.chain_id]
            started = _time.perf_counter()
            if plan.kind == "ktimes":
                values.update(
                    self._ktimes_kernel(
                        chain, group, objects, plan, query,
                        seed_index, context,
                    )
                )
            else:
                values.update(
                    self._exists_kernel(
                        chain, group, objects, plan, seed_index,
                        context,
                    )
                )
            elapsed[group.chain_id] += _time.perf_counter() - started
        if tasks:
            # price the supervisor deadline from the same cost model
            # the planner chose methods with: the model's estimate for
            # every pool-bound group, converted to seconds
            predicted = sum(
                model.predict_seconds(
                    group.costs.get(group.method, 0.0)
                )
                for group in task_groups
            )
            shard_values, group_seconds = (
                _dispatch.run_groups_in_processes(
                    tasks,
                    plan.window,
                    max_workers=plan.max_workers,
                    shard_min_objects=model.shard_min_objects,
                    backend=self.backend,
                    plan_cache=self.plan_cache,
                    context=context,
                    policy=plan.options.supervisor,
                    predicted_seconds=predicted,
                    faults=plan.options.faults,
                )
            )
            if plan.kind == "ktimes":
                shard_values = {
                    object_id: self._ktimes_value(distribution, query)
                    for object_id, distribution in shard_values.items()
                }
            values.update(shard_values)
            for group, seconds in zip(task_groups, group_seconds):
                elapsed[group.chain_id] += seconds
        for group in plan.groups:
            group.elapsed_seconds = elapsed[group.chain_id]
        return len(tasks)

    def _evaluate_store_scatter(
        self,
        plan: QueryPlan,
        survivors: Dict[str, List[UncertainObject]],
        values: Dict[str, ResultValue],
        query,
        context: ExecutionContext,
        seed_index: Optional[Dict[str, int]],
    ) -> Optional[int]:
        """Scatter the query over a sharded store's slab shards.

        Persistent workers memory-map the store's columnar slabs
        (attached once per process, zero-copy across queries) and run
        prefilter -> BFS -> kernel shard-local over every snapshot
        object; journaled overlay objects -- added or re-observed
        since the snapshot -- run in the parent with the exact same
        kernels.  Snapshot objects the parent stages already zeroed
        are re-evaluated shard-side; the filters are safe, so the
        worker's exact answer equals the zero element and the
        overwrite is a no-op.  Returns the shard count (the stage's
        pool-task count) or ``None`` to fall through to the classic
        publish path when the store holds no shards.
        """
        from repro.exec import dispatch as _dispatch

        store = self.database
        model = plan.cost_model or plan.options.cost_model or CostModel()
        overlay = set(store.overlay_object_ids())
        scatter_groups = []
        elapsed: Dict[str, float] = {}
        for group in plan.groups:
            objects = survivors[group.chain_id]
            group.survivors = len(objects)
            elapsed[group.chain_id] = 0.0
            method = group.method
            if plan.kind == "ktimes" and method != "mc":
                method = "ct"
            scatter_groups.append(
                (group.chain_id, method, group.backend or self.backend)
            )
        predicted = sum(
            model.predict_seconds(group.costs.get(group.method, 0.0))
            for group in plan.groups
        )
        shard_values, chain_seconds, stats = _dispatch.run_store_shards(
            store,
            scatter_groups,
            plan.window,
            plan.kind,
            max_workers=plan.max_workers,
            use_prefilter=plan.use_prefilter,
            use_bfs=plan.use_bfs,
            n_samples=plan.options.n_samples,
            seed_base=plan.options.seed,
            context=context,
            policy=plan.options.supervisor,
            predicted_seconds=predicted,
            faults=plan.options.faults,
        )
        if not stats["shards"]:
            return None  # empty store: all state lives in the overlay
        if plan.kind == "ktimes":
            shard_values = {
                object_id: self._ktimes_value(distribution, query)
                for object_id, distribution in shard_values.items()
            }
        values.update(shard_values)
        for group in plan.groups:
            subset = [
                obj
                for obj in survivors[group.chain_id]
                if obj.object_id in overlay
            ]
            if not subset:
                continue
            chain = self.database.chain(group.chain_id)
            started = _time.perf_counter()
            if plan.kind == "ktimes":
                values.update(
                    self._ktimes_kernel(
                        chain, group, subset, plan, query,
                        seed_index, context,
                    )
                )
            else:
                values.update(
                    self._exists_kernel(
                        chain, group, subset, plan, seed_index,
                        context,
                    )
                )
            elapsed[group.chain_id] += _time.perf_counter() - started
        for group in plan.groups:
            group.elapsed_seconds = (
                elapsed[group.chain_id]
                + chain_seconds.get(group.chain_id, 0.0)
            )
        plan.store_stats = dict(stats)
        return int(stats["shards"])

    def _exists_kernel(
        self,
        chain,
        group: GroupPlan,
        objects: List[UncertainObject],
        plan: QueryPlan,
        seed_index: Optional[Dict[str, int]],
        context: Optional[ExecutionContext] = None,
    ) -> Dict[str, ResultValue]:
        out: Dict[str, ResultValue] = {}
        if group.method == "mc":
            probabilities = batch_mc_exists(
                chain,
                [obj.observations for obj in objects],
                plan.window,
                n_samples=plan.options.n_samples,
                seeds=self._seeds(objects, plan, seed_index),
                context=context,
            )
            for obj, probability in zip(objects, probabilities):
                out[obj.object_id] = float(probability)
            return out

        singles = [
            obj for obj in objects
            if not obj.has_multiple_observations()
        ]
        multis = [
            obj for obj in objects if obj.has_multiple_observations()
        ]
        if singles:
            evaluate = (
                batch_qb_exists
                if group.method == "qb"
                else batch_ob_exists
            )
            probabilities = evaluate(
                chain,
                [obj.initial.distribution for obj in singles],
                plan.window,
                start_times=[obj.initial.time for obj in singles],
                backend=group.backend or self.backend,
                plan_cache=self.plan_cache,
                context=context,
            )
            for obj, probability in zip(singles, probabilities):
                out[obj.object_id] = float(probability)
        if multis:  # Section VI path regardless of qb/ob
            probabilities = batch_exists_multi(
                chain,
                [obj.observations for obj in multis],
                plan.window,
                backend=group.backend or self.backend,
                plan_cache=self.plan_cache,
                context=context,
            )
            for obj, probability in zip(multis, probabilities):
                out[obj.object_id] = float(probability)
        return out

    def _ktimes_kernel(
        self,
        chain,
        group: GroupPlan,
        objects: List[UncertainObject],
        plan: QueryPlan,
        query: PSTKTimesQuery,
        seed_index: Optional[Dict[str, int]],
        context: Optional[ExecutionContext] = None,
    ) -> Dict[str, ResultValue]:
        out: Dict[str, ResultValue] = {}
        if group.method == "mc":
            from repro.core.montecarlo import MonteCarloSampler

            sampler = MonteCarloSampler(chain)
            seeds = self._seeds(objects, plan, seed_index)
            for obj, seed in zip(objects, seeds):
                sampler.reseed(seed)
                distribution = sampler.ktimes_distribution(
                    obj.initial.distribution,
                    plan.window,
                    plan.options.n_samples,
                    start_time=obj.initial.time,
                )
                out[obj.object_id] = self._ktimes_value(
                    distribution, query
                )
            return out
        # exact path: one shared suffix-count pass answers every
        # pre-window object, the stacked cohort sweep the rest
        distributions = batch_ktimes_distribution(
            chain,
            [obj.initial.distribution for obj in objects],
            plan.window,
            start_times=[obj.initial.time for obj in objects],
            backend=group.backend or self.backend,
            plan_cache=self.plan_cache,
            context=context,
        )
        for obj, distribution in zip(objects, distributions):
            out[obj.object_id] = self._ktimes_value(
                distribution, query
            )
        return out

    @staticmethod
    def _ktimes_value(
        distribution: np.ndarray, query: PSTKTimesQuery
    ) -> ResultValue:
        if query.k is None:
            # copy: the row must outlive the batch result it views
            return np.array(distribution, dtype=float)
        return float(distribution[query.k])

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _degrade(
        context: ExecutionContext,
        tier: str,
        target: str,
        error: BaseException,
    ) -> None:
        """Record one execution-tier fall and warn the caller.

        The event lands on ``context.events`` (copied to
        ``plan.degradations`` by :meth:`execute`) so ``explain()``
        shows *why* a parallel plan answered serially.
        """
        message = (
            f"degraded {tier} -> {target} after "
            f"{type(error).__name__}: {error}"
        )
        context.record_event(message)
        warnings.warn(
            DegradedExecutionWarning(message), stacklevel=4
        )

    @staticmethod
    def _zero_factory(
        plan: QueryPlan, query
    ) -> Callable[[], ResultValue]:
        """The exact answer of an object no filter stage can keep.

        A pruned object provably never intersects the window, so its
        exists probability is 0, its for-all answer follows from the
        engine's ``1 - p`` complement step, and its visit-count
        distribution is the point mass at zero visits.
        """
        if plan.kind == "ktimes":
            if query.k is not None:
                hit = 1.0 if query.k == 0 else 0.0
                return lambda: hit

            def point_mass() -> np.ndarray:
                distribution = np.zeros(
                    plan.window.duration + 1, dtype=float
                )
                distribution[0] = 1.0
                return distribution

            return point_mass
        return lambda: 0.0

    def _seed_index(
        self, plan: QueryPlan
    ) -> Optional[Dict[str, int]]:
        """Stable per-object seed offsets for seeded MC runs.

        A sharded store publishes explicit positions
        (``seed_positions()``) that survive re-sharding and re-opening;
        plain databases fall back to insertion order.  Either way the
        offset is a property of the *object*, not of the candidate
        list, so estimates match across layouts and filter decisions.
        """
        if plan.options.seed is None:
            return None
        positions = getattr(self.database, "seed_positions", None)
        if callable(positions):
            return positions()
        return {
            object_id: index
            for index, object_id in enumerate(self.database.object_ids)
        }

    def _seeds(
        self,
        objects: List[UncertainObject],
        plan: QueryPlan,
        seed_index: Optional[Dict[str, int]],
    ) -> List[Optional[int]]:
        """Per-object MC seeds, stable under pruning.

        Offsets come from the object's position in the *database*, not
        in the surviving candidate list, so removing neighbours never
        shifts another object's stream.
        """
        base = plan.options.seed
        if base is None or seed_index is None:
            return [None] * len(objects)
        return [
            base + seed_index[obj.object_id] for obj in objects
        ]
