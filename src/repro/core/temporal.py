"""Temporal analyses derived from the absorbing construction.

The Section V-A absorbing matrices answer more than the window predicate:
because the TOP state accumulates exactly the worlds that have *entered*
the region, the increments of ``P(TOP)`` over time are the distribution
of the **first entry time** into the region.  This module exposes that
and the quantities built on it:

* :func:`first_passage_distribution` -- ``P(first entry at t)`` for
  ``t = start_time .. horizon`` plus the never-entering mass;
* :func:`expected_entry_time` -- conditional mean first-entry time;
* :func:`expected_visit_counts` -- expected number of query timestamps
  spent inside a region (the mean of the PSTkQ distribution, but
  computed directly from marginals by linearity).

These power queries like the introduction's "predict the number of cars
that will be in a congested road segment after 10-15 minutes" and "when
will this iceberg reach the shipping lane?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.core.distribution import StateDistribution
from repro.core.errors import QueryError, ValidationError
from repro.core.markov import MarkovChain
from repro.core.naive import region_marginals
from repro.core.plan_cache import resolve_absorbing
from repro.core.query import SpatioTemporalWindow

__all__ = [
    "FirstPassageResult",
    "first_passage_distribution",
    "expected_entry_time",
    "expected_visit_count",
]


@dataclass(frozen=True)
class FirstPassageResult:
    """The first-entry-time distribution into a region.

    Attributes:
        start_time: the observation timestamp (time of ``pmf[0]``).
        pmf: ``pmf[i]`` is the probability that the object enters the
            region for the first time at ``start_time + i``.
        never_probability: mass of worlds that never enter within the
            horizon.
    """

    start_time: int
    pmf: np.ndarray
    never_probability: float

    @property
    def horizon(self) -> int:
        """The last timestamp covered (``start_time + len(pmf) - 1``)."""
        return self.start_time + len(self.pmf) - 1

    def entry_by(self, time: int) -> float:
        """``P(first entry <= time)`` (the CDF)."""
        if time < self.start_time:
            return 0.0
        offset = min(time - self.start_time, len(self.pmf) - 1)
        return float(self.pmf[: offset + 1].sum())

    def conditional_mean(self) -> Optional[float]:
        """Mean entry time *given* entry within the horizon.

        None when entry is impossible within the horizon.
        """
        total = float(self.pmf.sum())
        if total <= 0.0:
            return None
        times = self.start_time + np.arange(len(self.pmf))
        return float((times * self.pmf).sum() / total)

    def quantile(self, q: float) -> Optional[int]:
        """Smallest time with ``P(entry <= time) >= q * P(entry)``.

        The quantile of the *conditional* entry-time distribution;
        None when entry is impossible.
        """
        if not (0.0 < q <= 1.0):
            raise ValidationError(f"q must be in (0, 1], got {q}")
        total = float(self.pmf.sum())
        if total <= 0.0:
            return None
        cumulative = np.cumsum(self.pmf) / total
        offset = int(np.searchsorted(cumulative, q - 1e-12))
        return self.start_time + min(offset, len(self.pmf) - 1)


def first_passage_distribution(
    chain: MarkovChain,
    initial: StateDistribution,
    region: Iterable[int],
    horizon: int,
    start_time: int = 0,
    plan_cache=None,
) -> FirstPassageResult:
    """Distribution of the first time the object enters ``region``.

    Runs the absorbing iteration with *every* timestamp treated as a
    query time; the per-step increase of the TOP mass is exactly the
    first-entry probability mass at that step.

    Args:
        chain: the trajectory model.
        initial: the object's distribution at ``start_time``.
        region: the target region.
        horizon: last timestamp to account for (``>= start_time``).
        start_time: the observation timestamp.
        plan_cache: optional :class:`~repro.core.plan_cache.PlanCache`
            supplying the absorbing matrices, so repeated analyses over
            the same ``(chain, region)`` skip construction.
    """
    if initial.n_states != chain.n_states:
        raise ValidationError(
            f"initial distribution over {initial.n_states} states, "
            f"chain over {chain.n_states}"
        )
    if horizon < start_time:
        raise QueryError(
            f"horizon {horizon} precedes start_time {start_time}"
        )
    frozen = frozenset(int(s) for s in region)
    if not frozen:
        raise QueryError("region is empty")
    if max(frozen) >= chain.n_states:
        raise QueryError(
            f"region state {max(frozen)} outside [0, {chain.n_states})"
        )
    matrices = resolve_absorbing(chain, frozen, plan_cache=plan_cache)
    steps = horizon - start_time
    all_times = frozenset(range(start_time, horizon + 1))
    vector = matrices.extend_initial(
        np.asarray(initial.vector, dtype=float), start_time, all_times
    )
    top = matrices.top_index
    pmf = np.zeros(steps + 1, dtype=float)
    pmf[0] = vector[top]  # mass already inside at start_time
    previous_top = float(vector[top])
    for offset in range(1, steps + 1):
        vector = np.asarray(vector @ matrices.m_plus, dtype=float)
        current_top = float(vector[top])
        pmf[offset] = max(0.0, current_top - previous_top)
        previous_top = current_top
    return FirstPassageResult(
        start_time=start_time,
        pmf=pmf,
        never_probability=max(0.0, 1.0 - previous_top),
    )


def expected_entry_time(
    chain: MarkovChain,
    initial: StateDistribution,
    region: Iterable[int],
    horizon: int,
    start_time: int = 0,
) -> Optional[float]:
    """Conditional mean first-entry time into ``region`` (or None)."""
    return first_passage_distribution(
        chain, initial, region, horizon, start_time
    ).conditional_mean()


def expected_visit_count(
    chain: MarkovChain,
    initial: StateDistribution,
    window: SpatioTemporalWindow,
    start_time: int = 0,
) -> float:
    """Expected number of query timestamps spent inside the region.

    By linearity of expectation this is the sum of the per-timestamp
    region marginals -- no possible-worlds machinery needed, and it
    equals the mean of the PSTkQ distribution (checked in the tests).
    """
    marginals = region_marginals(chain, initial, window, start_time)
    return float(marginals.sum())
