"""Trajectory smoothing: posteriors and MAP decoding between sightings.

Section VI of the paper conditions the trajectory model on multiple
observations to answer window queries.  The same machinery supports two
further questions a tracking application asks, implemented here with the
standard forward-backward and Viterbi recursions over the chain:

* :func:`posterior_marginals` -- for every timestamp between the first
  and last observation, the distribution of the object's location given
  *all* observations (the per-time generalisation of the paper's
  Lemma 1 fusion);
* :func:`map_trajectory` -- the single most probable possible world
  given the observations (Viterbi decoding), with its posterior
  probability.

Both are verified against exhaustive possible-world enumeration in the
test suite.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.distribution import StateDistribution
from repro.core.errors import InfeasibleEvidenceError, ValidationError
from repro.core.markov import MarkovChain
from repro.core.observation import ObservationSet
from repro.core.trajectory import Trajectory

__all__ = ["posterior_marginals", "map_trajectory"]


def _observation_factors(
    chain: MarkovChain, observations: ObservationSet, horizon: int
) -> List[np.ndarray]:
    """Per-time likelihood factors: observation pdfs or all-ones."""
    if observations.n_states != chain.n_states:
        raise ValidationError(
            f"observations over {observations.n_states} states, "
            f"chain over {chain.n_states}"
        )
    factors = [np.ones(chain.n_states) for _ in range(horizon + 1)]
    start = observations.first.time
    for observation in observations:
        offset = observation.time - start
        if offset > horizon:
            raise ValidationError(
                f"observation at t={observation.time} beyond horizon "
                f"{start + horizon}"
            )
        factors[offset] = np.asarray(
            observation.distribution.vector, dtype=float
        )
    return factors


def posterior_marginals(
    chain: MarkovChain,
    observations: ObservationSet,
    horizon: int = -1,
) -> List[StateDistribution]:
    """Posterior location distributions given all observations.

    Standard forward-backward smoothing: ``alpha[t]`` carries the
    evidence up to ``t``, ``beta[t]`` the evidence after ``t``; the
    marginal at ``t`` is the normalised product.

    Args:
        chain: the trajectory model.
        observations: at least one observation; the first anchors time 0
            of the returned list.
        horizon: last offset (relative to the first observation) to
            smooth; defaults to the last observation's offset.

    Returns:
        One distribution per offset ``0 .. horizon``.

    Raises:
        InfeasibleEvidenceError: when the observations are inconsistent
            with the chain.
    """
    start = observations.first.time
    if horizon < 0:
        horizon = observations.last.time - start
    factors = _observation_factors(chain, observations, horizon)
    matrix = chain.matrix

    alphas: List[np.ndarray] = []
    alpha = factors[0].copy()
    total = float(alpha.sum())
    if total <= 0.0:
        raise InfeasibleEvidenceError(
            "the first observation has zero mass"
        )
    alpha /= total
    alphas.append(alpha)
    for offset in range(1, horizon + 1):
        alpha = np.asarray(alpha @ matrix, dtype=float) * factors[offset]
        total = float(alpha.sum())
        if total <= 0.0:
            raise InfeasibleEvidenceError(
                f"observations are contradictory at offset {offset} "
                f"(t={start + offset})"
            )
        alpha = alpha / total
        alphas.append(alpha)

    betas: List[np.ndarray] = [np.ones(chain.n_states)] * (horizon + 1)
    beta = np.ones(chain.n_states)
    for offset in range(horizon - 1, -1, -1):
        # beta[i] = sum_j M[i, j] * factor[t+1][j] * beta[t+1][j]
        beta = np.asarray(
            matrix @ (beta * factors[offset + 1]), dtype=float
        )
        peak = float(beta.max())
        if peak <= 0.0:
            raise InfeasibleEvidenceError(
                f"no trajectory is consistent with the observations "
                f"after offset {offset}"
            )
        beta = beta / peak  # rescale for numerical stability
        betas[offset] = beta

    marginals: List[StateDistribution] = []
    for alpha, beta in zip(alphas, betas):
        product = alpha * beta
        total = float(product.sum())
        if total <= 0.0:
            raise InfeasibleEvidenceError(
                "zero posterior mass during smoothing"
            )
        marginals.append(StateDistribution(product / total))
    return marginals


def map_trajectory(
    chain: MarkovChain,
    observations: ObservationSet,
    horizon: int = -1,
) -> Tuple[Trajectory, float]:
    """The most probable possible world given the observations (Viterbi).

    Args:
        chain: the trajectory model.
        observations: the evidence; the first observation anchors time 0
            of the returned trajectory.
        horizon: last offset to decode; defaults to the last
            observation's offset.

    Returns:
        ``(trajectory, posterior_probability)`` -- the argmax possible
        world and its probability *given* the observations (i.e.
        normalised by the total evidence likelihood).

    Raises:
        InfeasibleEvidenceError: when no trajectory is consistent.
    """
    start = observations.first.time
    if horizon < 0:
        horizon = observations.last.time - start
    factors = _observation_factors(chain, observations, horizon)
    n = chain.n_states
    matrix = chain.matrix

    # log-domain Viterbi; -inf marks impossibility
    coo = matrix.tocoo()
    with np.errstate(divide="ignore"):
        delta = np.log(factors[0])
        log_data = np.log(coo.data)
    sources, targets = coo.row, coo.col

    backpointers: List[np.ndarray] = []
    for offset in range(1, horizon + 1):
        candidate = np.full(n, -np.inf)
        argmax = np.full(n, -1, dtype=np.int64)
        scores = delta[sources] + log_data
        for index in np.argsort(scores):  # ascending; later wins
            candidate[targets[index]] = scores[index]
            argmax[targets[index]] = sources[index]
        with np.errstate(divide="ignore"):
            candidate = candidate + np.log(factors[offset])
        candidate[np.isnan(candidate)] = -np.inf
        backpointers.append(argmax)
        delta = candidate

    best_final = int(np.argmax(delta))
    if not np.isfinite(delta[best_final]):
        raise InfeasibleEvidenceError(
            "no trajectory is consistent with the observations"
        )
    states = [best_final]
    for argmax in reversed(backpointers):
        states.append(int(argmax[states[-1]]))
    states.reverse()
    trajectory = Trajectory(tuple(states))

    # posterior probability: path weight / total evidence likelihood
    path_weight = float(np.exp(delta[best_final]))
    evidence = factors[0].copy()
    for offset in range(1, horizon + 1):
        evidence = np.asarray(
            evidence @ matrix, dtype=float
        ) * factors[offset]
    total = float(evidence.sum())
    if total <= 0.0:
        raise InfeasibleEvidenceError(
            "observations are contradictory with the chain"
        )
    return trajectory, path_weight / total
