"""Core algorithms of the reproduction.

This subpackage implements the paper's primary contribution: exact
possible-worlds query evaluation over Markov-chain models of uncertain
trajectories, via augmented transition matrices.

Modules:
    state_space:   discrete state spaces (line, grid, graph).
    distribution:  probability distributions over states; Lemma 1 fusion.
    markov:        validated (sparse) Markov chains.
    observation:   (possibly uncertain) observations of an object.
    trajectory:    certain trajectories; exact possible-world enumeration.
    query:         PST query definitions (exists / for-all / k-times).
    matrices:      the paper's augmented matrices (absorbing and doubled).
    object_based:  Section V-A / VI forward processing.
    query_based:   Section V-B backward processing.
    ktimes:        Section VII C(t)-matrix algorithm for PSTkQ.
    montecarlo:    Section VIII-A sampling baseline.
    naive:         temporal-independence competitor (Fig. 9(d)).
    engine:        a facade dispatching the above over a database.
    forecast:      occupancy forecasting (the paper's future-work analysis).
    intervals:     interval chains for cluster-level bounds (Section V-C).
    estimation:    learning chains from trajectory logs (Section IV premise).
    smoothing:     forward-backward posteriors and Viterbi MAP decoding.
    sequence:      Lahar-style regular-pattern queries (Section II).
    temporal:      first-passage distributions and expected visit counts.
    nearest_neighbor: snapshot probabilistic NN queries.
    errors:        exception hierarchy.
"""
