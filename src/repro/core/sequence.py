"""Regular-expression queries over uncertain trajectories.

Section II of the paper discusses Lahar, whose "query language ... allows
to formulate queries by stating regular expressions on an alphabet of
states, and returns the probability of observing a sequence of states
satisfying this regular expression" -- and notes that such regexes cannot
express the paper's *window* queries (no position-anchored constraints).

This module implements that query class so both families coexist in one
library: a small pattern combinator language over *state predicates*,
compiled through NFA -> DFA (subset construction), evaluated by pushing
the joint ``(chain state, DFA state)`` distribution forward -- the
product-chain analogue of the paper's matrix iteration.

Pattern combinators (:class:`Pattern` constructors):

* ``Pattern.states(region)`` -- one timestamp inside ``region``;
* ``Pattern.any()`` -- one timestamp anywhere;
* ``p.then(q)`` -- concatenation;
* ``p.alt(q)`` -- alternation;
* ``p.star()`` / ``p.plus()`` -- Kleene star / plus;
* ``p.repeat(k)`` -- exactly ``k`` copies.

The evaluation answers: *what is the probability that the trajectory
``o(t0), ..., o(t0 + L)`` spells a word in the pattern's language?*
(whole-sequence match, as in Lahar).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.core.distribution import StateDistribution
from repro.core.errors import QueryError, ValidationError
from repro.core.markov import MarkovChain

__all__ = ["Pattern", "sequence_probability"]


# ----------------------------------------------------------------------
# pattern AST
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Pattern:
    """A regular pattern over state predicates (immutable AST node).

    Build with the factory methods; combine with :meth:`then`,
    :meth:`alt`, :meth:`star`, :meth:`plus`, :meth:`repeat`.
    """

    kind: str
    region: Optional[FrozenSet[int]] = None
    children: Tuple["Pattern", ...] = ()

    # -------------------------- constructors --------------------------
    @staticmethod
    def states(region: Iterable[int]) -> "Pattern":
        """Match one timestamp with the object inside ``region``."""
        frozen = frozenset(int(s) for s in region)
        if not frozen:
            raise QueryError("pattern region is empty")
        return Pattern("atom", region=frozen)

    @staticmethod
    def state(state: int) -> "Pattern":
        """Match one timestamp at exactly ``state``."""
        return Pattern.states({state})

    @staticmethod
    def any() -> "Pattern":
        """Match one timestamp anywhere (wildcard)."""
        return Pattern("any")

    @staticmethod
    def epsilon() -> "Pattern":
        """Match the empty sequence."""
        return Pattern("epsilon")

    # -------------------------- combinators ---------------------------
    def then(self, other: "Pattern") -> "Pattern":
        """Concatenation: ``self`` followed by ``other``."""
        return Pattern("concat", children=(self, other))

    def alt(self, other: "Pattern") -> "Pattern":
        """Alternation: ``self`` or ``other``."""
        return Pattern("union", children=(self, other))

    def star(self) -> "Pattern":
        """Zero or more repetitions."""
        return Pattern("star", children=(self,))

    def plus(self) -> "Pattern":
        """One or more repetitions."""
        return self.then(self.star())

    def repeat(self, count: int) -> "Pattern":
        """Exactly ``count`` repetitions."""
        if count < 0:
            raise QueryError(f"repeat count must be >= 0, got {count}")
        result = Pattern.epsilon()
        for _ in range(count):
            result = result.then(self)
        return result

    # ------------------------------------------------------------------
    # NFA construction (Thompson)
    # ------------------------------------------------------------------
    def _to_nfa(
        self, n_states: int
    ) -> Tuple[int, int, List[Dict[object, List[int]]]]:
        """Thompson construction.

        Returns ``(start, accept, transitions)`` where transitions is a
        list of dicts: key None is epsilon, any other key is a frozenset
        of chain states (the predicate).
        """
        transitions: List[Dict[object, List[int]]] = []

        def new_node() -> int:
            transitions.append({})
            return len(transitions) - 1

        def add(source: int, symbol, target: int) -> None:
            transitions[source].setdefault(symbol, []).append(target)

        def build(pattern: "Pattern") -> Tuple[int, int]:
            if pattern.kind == "epsilon":
                node = new_node()
                return node, node
            if pattern.kind == "atom":
                region = pattern.region
                if max(region) >= n_states:
                    raise QueryError(
                        f"pattern state {max(region)} outside "
                        f"[0, {n_states})"
                    )
                start, accept = new_node(), new_node()
                add(start, region, accept)
                return start, accept
            if pattern.kind == "any":
                start, accept = new_node(), new_node()
                add(start, frozenset(range(n_states)), accept)
                return start, accept
            if pattern.kind == "concat":
                first_start, first_accept = build(pattern.children[0])
                second_start, second_accept = build(pattern.children[1])
                add(first_accept, None, second_start)
                return first_start, second_accept
            if pattern.kind == "union":
                start, accept = new_node(), new_node()
                for child in pattern.children:
                    child_start, child_accept = build(child)
                    add(start, None, child_start)
                    add(child_accept, None, accept)
                return start, accept
            if pattern.kind == "star":
                start, accept = new_node(), new_node()
                child_start, child_accept = build(pattern.children[0])
                add(start, None, child_start)
                add(start, None, accept)
                add(child_accept, None, child_start)
                add(child_accept, None, accept)
                return start, accept
            raise ValidationError(f"unknown pattern kind {pattern.kind!r}")

        start, accept = build(self)
        return start, accept, transitions

    def compile(self, n_states: int) -> "CompiledPattern":
        """Compile to a DFA over the chain's state alphabet."""
        return CompiledPattern(self, n_states)

    def matches(self, states: Iterable[int], n_states: int) -> bool:
        """Whether a concrete state sequence spells a word (whole match)."""
        return self.compile(n_states).matches(states)


class CompiledPattern:
    """A pattern compiled to a DFA whose alphabet is the chain state.

    Subset construction over the Thompson NFA; the DFA transition for a
    chain state ``s`` from a DFA node is precomputed lazily and cached,
    so evaluation cost is ``O(L . |S| . reached DFA nodes)``.
    """

    def __init__(self, pattern: Pattern, n_states: int) -> None:
        if n_states < 1:
            raise ValidationError(
                f"n_states must be positive, got {n_states}"
            )
        self.pattern = pattern
        self.n_states = n_states
        start, accept, transitions = pattern._to_nfa(n_states)
        self._nfa_accept = accept
        self._nfa = transitions
        self._start_set = self._epsilon_closure({start})
        self._dfa_nodes: Dict[FrozenSet[int], int] = {}
        self._dfa_accepting: List[bool] = []
        self._dfa_step: List[List[Optional[int]]] = []
        self._node_sets: List[FrozenSet[int]] = []
        self.start_node = self._intern(self._start_set)

    def _epsilon_closure(self, nodes: Set[int]) -> FrozenSet[int]:
        stack = list(nodes)
        seen = set(nodes)
        while stack:
            node = stack.pop()
            for target in self._nfa[node].get(None, []):
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return frozenset(seen)

    def _intern(self, node_set: FrozenSet[int]) -> int:
        existing = self._dfa_nodes.get(node_set)
        if existing is not None:
            return existing
        index = len(self._dfa_nodes)
        self._dfa_nodes[node_set] = index
        self._node_sets.append(node_set)
        self._dfa_accepting.append(self._nfa_accept in node_set)
        self._dfa_step.append([None] * self.n_states)
        return index

    def step(self, node: int, chain_state: int) -> int:
        """DFA transition on reading ``chain_state`` (lazily built)."""
        cached = self._dfa_step[node][chain_state]
        if cached is not None:
            return cached
        targets: Set[int] = set()
        for nfa_node in self._node_sets[node]:
            for symbol, successors in self._nfa[nfa_node].items():
                if symbol is None:
                    continue
                if chain_state in symbol:
                    targets.update(successors)
        result = self._intern(self._epsilon_closure(targets))
        self._dfa_step[node][chain_state] = result
        return result

    def is_accepting(self, node: int) -> bool:
        """Whether a DFA node accepts."""
        return self._dfa_accepting[node]

    def matches(self, states: Iterable[int]) -> bool:
        """Run the DFA over a concrete state sequence."""
        node = self.start_node
        for state in states:
            if not (0 <= int(state) < self.n_states):
                raise ValidationError(
                    f"state {state} outside [0, {self.n_states})"
                )
            node = self.step(node, int(state))
        return self.is_accepting(node)


def sequence_probability(
    chain: MarkovChain,
    initial: StateDistribution,
    pattern: Pattern,
    length: int,
) -> float:
    """Probability that ``o(0..length)`` spells a word of ``pattern``.

    Pushes the joint distribution over ``(chain state, DFA node)``
    forward ``length`` steps (the sequence has ``length + 1`` symbols,
    the first being the initial state) and sums the accepting mass.

    Args:
        chain: the trajectory model.
        initial: the distribution at the first timestamp.
        pattern: the regular pattern; whole-sequence match semantics.
        length: number of transitions (sequence length minus one).

    Returns:
        The exact match probability under possible-worlds semantics.
    """
    if initial.n_states != chain.n_states:
        raise ValidationError(
            f"initial distribution over {initial.n_states} states, "
            f"chain over {chain.n_states}"
        )
    if length < 0:
        raise QueryError(f"length must be non-negative, got {length}")
    compiled = pattern.compile(chain.n_states)

    # joint[(dfa_node)] = vector over chain states
    joint: Dict[int, np.ndarray] = {}
    for state, probability in initial.items():
        node = compiled.step(compiled.start_node, state)
        vector = joint.setdefault(
            node, np.zeros(chain.n_states, dtype=float)
        )
        vector[state] += probability

    matrix = chain.matrix
    for _ in range(length):
        next_joint: Dict[int, np.ndarray] = {}
        for node, vector in joint.items():
            pushed = np.asarray(vector @ matrix, dtype=float)
            for state in np.nonzero(pushed > 0.0)[0]:
                target = compiled.step(node, int(state))
                bucket = next_joint.setdefault(
                    target, np.zeros(chain.n_states, dtype=float)
                )
                bucket[state] += pushed[state]
        joint = next_joint

    accepted = float(
        sum(
            vector.sum()
            for node, vector in joint.items()
            if compiled.is_accepting(node)
        )
    )
    # float drift across many vecmat rounds can push the sum past 1
    return min(1.0, max(0.0, accepted))
