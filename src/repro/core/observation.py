"""Observations of uncertain spatio-temporal objects.

An observation fixes (possibly with uncertainty) the state of an object at
one timestamp.  Section VI of the paper handles an arbitrary number of
observations per object: the first observation anchors the forward
computation, later observations are fused in via Lemma 1 (independent
evidence: elementwise product + normalisation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.core.distribution import StateDistribution
from repro.core.errors import ObservationError

__all__ = ["Observation", "ObservationSet"]


@dataclass(frozen=True)
class Observation:
    """One observation: a distribution over states at a timestamp.

    Attributes:
        time: the timestamp ``t`` of the observation (non-negative).
        distribution: the paper's ``P_obs`` -- where the object may have
            been at ``t``, as a probability distribution over states.  A
            precise observation is a point distribution.
    """

    time: int
    distribution: StateDistribution

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ObservationError(
                f"observation time must be non-negative, got {self.time}"
            )

    @classmethod
    def precise(cls, time: int, n_states: int, state: int) -> "Observation":
        """An exact sighting of the object at ``state``."""
        return cls(time, StateDistribution.point(n_states, state))

    @classmethod
    def uniform(
        cls, time: int, n_states: int, states: Iterable[int]
    ) -> "Observation":
        """An observation that narrows the object to a uniform region.

        This matches the synthetic generator's ``object_spread`` parameter
        (Table I): the location at ``t_0`` is "a PDF over a certain number
        of states".
        """
        return cls(time, StateDistribution.uniform(n_states, states))

    @classmethod
    def weighted(
        cls, time: int, n_states: int, weights: Mapping[int, float]
    ) -> "Observation":
        """An observation with explicit per-state weights (normalised)."""
        return cls(
            time,
            StateDistribution.from_dict(n_states, weights, normalize=True),
        )

    @classmethod
    def from_support(
        cls,
        time: int,
        n_states: int,
        states: Iterable[int],
        weights: Iterable[float],
    ) -> "Observation":
        """An observation from parallel support/weight columns.

        Used by the sharded store and shard workers, which keep
        observation distributions as columnar ``(states, weights)``
        slices rather than dicts.
        """
        return cls(
            time,
            StateDistribution.from_support(
                n_states, list(states), list(weights), normalize=True
            ),
        )

    @property
    def n_states(self) -> int:
        """Number of states of the underlying distribution."""
        return self.distribution.n_states

    def is_precise(self) -> bool:
        """Whether the observation pins the object to a single state."""
        return self.distribution.support_size() == 1


@dataclass(frozen=True)
class ObservationSet:
    """A time-ordered collection of observations of one object.

    Invariants enforced at construction: at least one observation, all over
    the same state count, strictly increasing timestamps.
    """

    observations: Tuple[Observation, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.observations:
            raise ObservationError("an object needs at least one observation")
        ordered = tuple(sorted(self.observations, key=lambda o: o.time))
        object.__setattr__(self, "observations", ordered)
        n_states = ordered[0].n_states
        previous_time: Optional[int] = None
        for observation in ordered:
            if observation.n_states != n_states:
                raise ObservationError(
                    f"observations over {n_states} and "
                    f"{observation.n_states} states cannot be mixed"
                )
            if previous_time is not None and observation.time == previous_time:
                raise ObservationError(
                    f"two observations at time {observation.time}; fuse "
                    f"them first (Observation distributions support .fuse)"
                )
            previous_time = observation.time

    @classmethod
    def single(cls, observation: Observation) -> "ObservationSet":
        """The common case of one observation (extrapolation queries)."""
        return cls((observation,))

    @classmethod
    def of(cls, *observations: Observation) -> "ObservationSet":
        """Variadic convenience constructor."""
        return cls(tuple(observations))

    @property
    def n_states(self) -> int:
        """State count shared by all observations."""
        return self.observations[0].n_states

    @property
    def first(self) -> Observation:
        """The earliest observation (anchors forward processing)."""
        return self.observations[0]

    @property
    def last(self) -> Observation:
        """The latest observation."""
        return self.observations[-1]

    @property
    def times(self) -> Tuple[int, ...]:
        """All observation timestamps, ascending."""
        return tuple(observation.time for observation in self.observations)

    def at(self, time: int) -> Optional[Observation]:
        """The observation at ``time`` if one exists."""
        for observation in self.observations:
            if observation.time == time:
                return observation
        return None

    def after(self, time: int) -> List[Observation]:
        """Observations strictly after ``time``, ascending."""
        return [o for o in self.observations if o.time > time]

    def __iter__(self) -> Iterator[Observation]:
        return iter(self.observations)

    def __len__(self) -> int:
        return len(self.observations)
