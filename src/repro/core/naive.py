"""The temporal-independence model -- the paper's *incorrect* competitor.

Prior work (Section II; Figure 1(b)) treats the object's location at each
timestamp as an independent random variable.  Under that assumption the
PST-exists probability factorises over time::

    P_naive_exists = 1 - prod_{t in T_q} (1 - P(o(t) in S_q))

which systematically *over-estimates* the true probability, with the bias
growing in the window length -- the effect Figure 9(d) quantifies.  The
marginals themselves are still computed from the Markov chain (they are
correct individually); only the combination ignores the correlation.

Also provided: the naive for-all probability (product of the marginals)
and the naive visit-count distribution (a Poisson-binomial over the
independent per-timestamp indicators).
"""

from __future__ import annotations

import numpy as np

from repro.core.distribution import StateDistribution
from repro.core.errors import QueryError, ValidationError
from repro.core.markov import MarkovChain
from repro.core.query import SpatioTemporalWindow

__all__ = [
    "naive_exists_probability",
    "naive_forall_probability",
    "naive_ktimes_distribution",
    "region_marginals",
]


def region_marginals(
    chain: MarkovChain,
    initial: StateDistribution,
    window: SpatioTemporalWindow,
    start_time: int = 0,
) -> np.ndarray:
    """``P(o(t) in S_q)`` for each query time ``t`` (ascending).

    These snapshot probabilities are exact; the naive model errs only in
    combining them as if independent.
    """
    if initial.n_states != chain.n_states:
        raise ValidationError(
            f"initial distribution over {initial.n_states} states, "
            f"chain over {chain.n_states}"
        )
    window.validate_for(chain.n_states)
    if window.t_start < start_time:
        raise QueryError(
            f"query time {window.t_start} precedes the observation at "
            f"t={start_time}"
        )
    region = np.zeros(chain.n_states, dtype=float)
    region[list(window.region)] = 1.0
    ordered_times = sorted(window.times)
    marginals = []
    vector = np.asarray(initial.vector, dtype=float)
    current_time = start_time
    for query_time in ordered_times:
        for _ in range(query_time - current_time):
            vector = np.asarray(vector @ chain.matrix, dtype=float)
        current_time = query_time
        marginals.append(float(vector @ region))
    return np.asarray(marginals, dtype=float)


def naive_exists_probability(
    chain: MarkovChain,
    initial: StateDistribution,
    window: SpatioTemporalWindow,
    start_time: int = 0,
) -> float:
    """PST-exists under the (wrong) temporal-independence assumption."""
    marginals = region_marginals(chain, initial, window, start_time)
    return float(1.0 - np.prod(1.0 - marginals))


def naive_forall_probability(
    chain: MarkovChain,
    initial: StateDistribution,
    window: SpatioTemporalWindow,
    start_time: int = 0,
) -> float:
    """PST-for-all under the temporal-independence assumption."""
    marginals = region_marginals(chain, initial, window, start_time)
    return float(np.prod(marginals))


def naive_ktimes_distribution(
    chain: MarkovChain,
    initial: StateDistribution,
    window: SpatioTemporalWindow,
    start_time: int = 0,
) -> np.ndarray:
    """Visit-count distribution under temporal independence.

    With independent per-timestamp hit indicators the count follows a
    Poisson-binomial distribution, computed by the standard O(|T_q|^2)
    dynamic program.
    """
    marginals = region_marginals(chain, initial, window, start_time)
    distribution = np.zeros(len(marginals) + 1, dtype=float)
    distribution[0] = 1.0
    for p in marginals:
        distribution[1:] = distribution[1:] * (1.0 - p) + distribution[:-1] * p
        distribution[0] *= 1.0 - p
    return distribution
