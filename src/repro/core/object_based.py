"""Object-based (OB) query processing -- Sections V-A and VI.

The object-based approach evaluates a query *per object*: the object's
distribution vector is pushed forward through time with the augmented
matrices ``M_minus`` / ``M_plus``; the probability accumulated in the
absorbing TOP state after the last query timestamp is exactly the
PST-exists probability under possible-worlds semantics.

Features beyond the basic loop, all from the paper:

* **early termination** (Section V-C): for threshold queries, processing
  can stop as soon as ``P(TOP)`` exceeds the threshold;
* **reachability pruning** (Section V-C / the ``S_reach`` discussion):
  the chain is restricted to the states actually reachable from the
  object's start distribution within the query horizon, shrinking the
  matrices;
* **multiple observations** (Section VI): the doubled-state-space variant
  with Lemma 1 evidence fusion at each later observation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.distribution import StateDistribution
from repro.core.errors import QueryError, ValidationError
from repro.core.markov import MarkovChain
from repro.core.matrices import AbsorbingMatrices, DoubledMatrices
from repro.core.observation import ObservationSet
from repro.core.plan_cache import resolve_absorbing, resolve_doubled
from repro.core.query import SpatioTemporalWindow
from repro.exec.operators import FORWARD_SWEEP, SweepSchedule

__all__ = [
    "ob_exists_probability",
    "ob_forall_probability",
    "ob_exists_probability_multi",
]


def _check_window(
    chain: MarkovChain, window: SpatioTemporalWindow, start_time: int
) -> None:
    window.validate_for(chain.n_states)
    if start_time < 0:
        raise QueryError(f"start_time must be non-negative, got {start_time}")
    if window.t_start < start_time:
        raise QueryError(
            f"query time {window.t_start} precedes the observation at "
            f"t={start_time}; extrapolation queries need all query times "
            f">= the observation time"
        )


def ob_exists_probability(
    chain: MarkovChain,
    initial: StateDistribution,
    window: SpatioTemporalWindow,
    start_time: int = 0,
    matrices: Optional[AbsorbingMatrices] = None,
    backend: Optional[str] = None,
    stop_at_probability: Optional[float] = None,
    prune: bool = False,
    plan_cache=None,
) -> float:
    """PST-exists probability of one object, object-based (Section V-A).

    Args:
        chain: the object's Markov model.
        initial: the object's distribution at ``start_time`` (its
            observation).
        window: the query window ``S_q x T_q``.
        start_time: the timestamp of the observation (default 0, as in the
            paper's exposition).
        matrices: pre-built absorbing matrices to reuse across objects
            sharing a chain; built on the fly when omitted.  Must have been
            built for exactly ``window.region``.
        backend: linear-algebra backend name (ignored when ``matrices`` is
            given).
        stop_at_probability: when set, return as soon as ``P(TOP)`` reaches
            this value -- a lower bound sufficient for threshold queries
            (the paper's early-termination note in Section V-C).
        prune: restrict the computation to states reachable from the
            initial support within the horizon (the paper's ``S_reach``).
        plan_cache: optional :class:`~repro.core.plan_cache.PlanCache`
            supplying the absorbing matrices across calls (ignored when
            ``matrices`` is given or ``prune`` restricts the chain).

    Returns:
        ``P_exists(o, S_q, T_q)`` -- exact up to float arithmetic (or a
        lower bound when early termination fired).
    """
    if initial.n_states != chain.n_states:
        raise ValidationError(
            f"initial distribution over {initial.n_states} states, "
            f"chain over {chain.n_states}"
        )
    _check_window(chain, window, start_time)

    if prune and matrices is None:
        return _ob_exists_pruned(
            chain, initial, window, start_time, backend, stop_at_probability
        )

    matrices = resolve_absorbing(
        chain, window.region, backend, plan_cache, matrices
    )

    # a one-row schedule through the shared ForwardSweep operator: the
    # same kernel the batched path runs, with Section V-C early
    # termination expressed as the schedule's stop threshold
    schedule = SweepSchedule(
        n_rows=1,
        first=start_time,
        last=window.t_end,
        times=window.times,
        activations={start_time: [(0, initial.vector)]},
        harvests={window.t_end: [0]},
        read="top",
        read_offset=matrices.top_index,
        stop_threshold=stop_at_probability,
    )
    result = FORWARD_SWEEP(
        (matrices, schedule), chain, window.region, backend
    )
    return float(result[0])


def _ob_exists_pruned(
    chain: MarkovChain,
    initial: StateDistribution,
    window: SpatioTemporalWindow,
    start_time: int,
    backend: Optional[str],
    stop_at_probability: Optional[float],
) -> float:
    """OB with the chain restricted to the reachable state set."""
    horizon = window.t_end - start_time
    reachable = chain.reachable_within(initial.support(), horizon)
    region = window.region & reachable
    if not region:
        return 0.0  # the object cannot enter the window at all
    sub_chain, index_map = chain.restricted(sorted(reachable))
    sub_initial = np.zeros(sub_chain.n_states, dtype=float)
    for state, probability in initial.items():
        sub_initial[index_map[state]] = probability
    sub_window = SpatioTemporalWindow(
        frozenset(index_map[s] for s in region), window.times
    )
    return ob_exists_probability(
        sub_chain,
        StateDistribution(sub_initial, normalize=True),
        sub_window,
        start_time=start_time,
        backend=backend,
        stop_at_probability=stop_at_probability,
        prune=False,
    )


def ob_forall_probability(
    chain: MarkovChain,
    initial: StateDistribution,
    window: SpatioTemporalWindow,
    start_time: int = 0,
    backend: Optional[str] = None,
) -> float:
    """PST-for-all probability via the complement identity (Section VII).

    ``P_forall(o, S_q, T_q) = 1 - P_exists(o, S \\ S_q, T_q)``.  When the
    region covers the whole space the probability is trivially one.
    """
    _check_window(chain, window, start_time)
    complement = frozenset(range(chain.n_states)) - window.region
    if not complement:
        return 1.0
    return 1.0 - ob_exists_probability(
        chain,
        initial,
        window.with_region(complement),
        start_time=start_time,
        backend=backend,
    )


def ob_exists_probability_multi(
    chain: MarkovChain,
    observations: ObservationSet,
    window: SpatioTemporalWindow,
    matrices: Optional[DoubledMatrices] = None,
    backend: Optional[str] = None,
    plan_cache=None,
) -> float:
    """PST-exists with multiple observations (Section VI).

    The first observation anchors a forward pass over the *doubled* state
    space; every later observation is fused in with Lemma 1 (elementwise
    product of the tiled observation pdf, then renormalisation).  The
    result is the posterior probability of the "window hit" block after
    all observations and all query times have been processed.

    Raises:
        InfeasibleEvidenceError: when the observations are mutually
            contradictory under the chain (zero posterior mass).
        QueryError: when a query time precedes the first observation.
    """
    if observations.n_states != chain.n_states:
        raise ValidationError(
            f"observations over {observations.n_states} states, "
            f"chain over {chain.n_states}"
        )
    first = observations.first
    _check_window(chain, window, first.time)

    matrices = resolve_doubled(
        chain, window.region, backend, plan_cache, matrices
    )

    # the one-object case of the batched Section VI sweep: same
    # operator, same schedule shape, one row
    from repro.core.batch import batch_exists_multi

    result = batch_exists_multi(
        chain,
        [observations],
        window,
        matrices=matrices,
        backend=backend,
    )
    return float(result[0])
