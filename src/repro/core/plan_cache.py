"""Cross-query caching of augmented matrices and backward vectors.

Every query against a ``(chain, region)`` pair pays a construction cost
before the first vector--matrix product can run: the Section V-A
absorbing matrices, the Section VI doubled matrices, or the Section V-B
backward vector are assembled from COO triples.  Monitoring workloads --
the paper's motivating iceberg/traffic scenarios -- re-issue windows
over the same chains continuously, so that construction cost dominates
once the products themselves are batched (see :mod:`repro.core.batch`).

:class:`PlanCache` is a bounded LRU cache over those artefacts, keyed by

    ``(construction kind, chain fingerprint, region, extras, backend)``

where the chain fingerprint is a content hash
(:meth:`repro.core.markov.MarkovChain.fingerprint`), so equal-by-value
chains -- e.g. a database reloaded from disk -- hit the same entries.
Cached values are treated as immutable by all consumers.

The cache records hit/miss/construction counters
(:attr:`PlanCache.stats`) which the test suite asserts on: a repeated
query must not construct a second time.

The cache is thread-safe: the query pipeline dispatches chain groups
across a worker pool that shares one instance.  Bookkeeping (LRU order,
counters) happens under an internal lock while construction itself runs
outside it, so two threads racing on the *same* cold key may both build
-- the first store wins and both get the same object back; entries are
immutable so either build is equally valid.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Hashable, Iterable, Optional, Tuple

import numpy as np

from repro.core.errors import QueryError, ValidationError
from repro.core.markov import MarkovChain
from repro.core.matrices import (
    AbsorbingMatrices,
    DoubledMatrices,
    build_absorbing_matrices,
    build_doubled_matrices,
)
from repro.core.query import SpatioTemporalWindow

__all__ = [
    "PlanCache",
    "PlanCacheStats",
    "resolve_absorbing",
    "resolve_doubled",
]


def resolve_absorbing(
    chain: MarkovChain,
    region: FrozenSet[int],
    backend: Optional[str] = None,
    plan_cache: Optional["PlanCache"] = None,
    prebuilt: Optional[AbsorbingMatrices] = None,
) -> AbsorbingMatrices:
    """The Section V-A matrices from whichever source is available.

    Precedence: an explicitly ``prebuilt`` instance (validated against
    ``region``), then the ``plan_cache``, then a fresh construction.
    Every query processor resolves its matrices through here so the
    precedence and the region check live in one place.
    """
    if prebuilt is not None:
        if prebuilt.region != region:
            raise QueryError(
                "pre-built matrices were constructed for a "
                "different region"
            )
        return prebuilt
    if plan_cache is not None:
        return plan_cache.absorbing(chain, region, backend)
    return build_absorbing_matrices(chain, region, backend)


def resolve_doubled(
    chain: MarkovChain,
    region: FrozenSet[int],
    backend: Optional[str] = None,
    plan_cache: Optional["PlanCache"] = None,
    prebuilt: Optional[DoubledMatrices] = None,
) -> DoubledMatrices:
    """The Section VI doubled matrices; see :func:`resolve_absorbing`."""
    if prebuilt is not None:
        if prebuilt.region != region:
            raise QueryError(
                "pre-built matrices were constructed for a "
                "different region"
            )
        return prebuilt
    if plan_cache is not None:
        return plan_cache.doubled(chain, region, backend)
    return build_doubled_matrices(chain, region, backend)


@dataclass
class PlanCacheStats:
    """Counters describing one cache's effectiveness.

    Attributes:
        hits: lookups answered from the cache.
        misses: lookups that had to construct.
        constructions: artefacts built, per construction kind.
        evictions: entries dropped by the LRU bound.
    """

    hits: int = 0
    misses: int = 0
    constructions: Dict[str, int] = field(default_factory=dict)
    evictions: int = 0

    @property
    def total_constructions(self) -> int:
        """Artefacts built across all kinds."""
        return sum(self.constructions.values())

    def _count(self, kind: str) -> None:
        self.constructions[kind] = self.constructions.get(kind, 0) + 1


class PlanCache:
    """A bounded LRU cache of query-evaluation artefacts.

    One instance per :class:`~repro.core.engine.QueryEngine` by default;
    share an instance across engines to amortise construction across
    sessions querying the same chains.

    Args:
        maxsize: maximum number of cached artefacts; the least recently
            used entry is evicted beyond it.
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize <= 0:
            raise ValidationError(
                f"maxsize must be positive, got {maxsize}"
            )
        self.maxsize = int(maxsize)
        self._entries: "OrderedDict[Tuple[Hashable, ...], Any]" = (
            OrderedDict()
        )
        self._lock = threading.RLock()
        self.stats = PlanCacheStats()

    # ------------------------------------------------------------------
    # generic LRU plumbing (callers hold self._lock)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def _lookup(self, key: Tuple[Hashable, ...]) -> Any:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
        return entry

    def _store(self, key: Tuple[Hashable, ...], value: Any) -> Any:
        existing = self._entries.get(key)
        if existing is not None:  # a racing thread stored first
            return existing
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return value

    def contains(
        self,
        kind: str,
        chain: MarkovChain,
        region: Iterable[int],
        backend: Optional[str] = None,
        extra: Hashable = None,
    ) -> bool:
        """Non-mutating probe used by the query planner's cost model.

        Neither the LRU order nor the hit/miss counters change, so
        planning a query does not perturb the statistics the executed
        plan is judged by.
        """
        frozen = frozenset(int(s) for s in region)
        key = self._key(kind, chain, frozen, backend, extra)
        with self._lock:
            return key in self._entries

    @staticmethod
    def _key(
        kind: str,
        chain: MarkovChain,
        region: FrozenSet[int],
        backend: Optional[str],
        extra: Hashable = None,
    ) -> Tuple[Hashable, ...]:
        # None means "the default backend", which is scipy; the two
        # spellings must alias or a planner probing with None never
        # sees artefacts an engine stored under an explicit "scipy".
        return (
            kind, chain.fingerprint(), region, backend or "scipy", extra
        )

    @staticmethod
    def _fingerprint_key(
        kind: str,
        fingerprint: str,
        region: FrozenSet[int],
        backend: Optional[str],
        extra: Hashable = None,
    ) -> Tuple[Hashable, ...]:
        return (kind, fingerprint, region, backend or "scipy", extra)

    # ------------------------------------------------------------------
    # cross-process rehydration
    # ------------------------------------------------------------------
    def lookup_fingerprint(
        self,
        kind: str,
        fingerprint: str,
        region: Iterable[int],
        backend: Optional[str] = None,
        extra: Hashable = None,
    ) -> Any:
        """Fetch an artefact by content fingerprint (None on a miss).

        The process-dispatch workers look their rehydrated artefacts
        up this way -- a present entry counts as a hit, an absent one
        counts as nothing (adoption is not construction, so the miss
        counters stay meaningful).
        """
        frozen = frozenset(int(s) for s in region)
        key = self._fingerprint_key(
            kind, fingerprint, frozen, backend, extra
        )
        with self._lock:
            return self._lookup(key)

    def adopt(
        self,
        kind: str,
        fingerprint: str,
        region: Iterable[int],
        backend: Optional[str],
        value: Any,
        extra: Hashable = None,
    ) -> Any:
        """Store an externally constructed artefact under its content key.

        Process-pool workers (:mod:`repro.exec.dispatch`) rebuild
        matrices from shared memory and *adopt* them here instead of
        constructing: keys are content fingerprints, never addresses,
        so a hit in the worker cache is exactly as valid as one in the
        parent's.  Adopting counts as neither a hit nor a miss (the
        value was built elsewhere); the racing-store rule of
        :meth:`_store` applies.
        """
        frozen = frozenset(int(s) for s in region)
        key = self._fingerprint_key(
            kind, fingerprint, frozen, backend, extra
        )
        with self._lock:
            return self._store(key, value)

    # ------------------------------------------------------------------
    # cached constructions
    # ------------------------------------------------------------------
    def absorbing(
        self,
        chain: MarkovChain,
        region: Iterable[int],
        backend: Optional[str] = None,
    ) -> AbsorbingMatrices:
        """The Section V-A matrices for ``(chain, region)``, cached."""
        frozen = frozenset(int(s) for s in region)
        key = self._key("absorbing", chain, frozen, backend)
        with self._lock:
            cached = self._lookup(key)
            if cached is not None:
                return cached
            self.stats.misses += 1
            self.stats._count("absorbing")
        value = build_absorbing_matrices(chain, frozen, backend)
        with self._lock:
            return self._store(key, value)

    def doubled(
        self,
        chain: MarkovChain,
        region: Iterable[int],
        backend: Optional[str] = None,
    ) -> DoubledMatrices:
        """The Section VI doubled matrices, cached."""
        frozen = frozenset(int(s) for s in region)
        key = self._key("doubled", chain, frozen, backend)
        with self._lock:
            cached = self._lookup(key)
            if cached is not None:
                return cached
            self.stats.misses += 1
            self.stats._count("doubled")
        value = build_doubled_matrices(chain, frozen, backend)
        with self._lock:
            return self._store(key, value)

    def backward_vectors(
        self,
        chain: MarkovChain,
        window: SpatioTemporalWindow,
        start_times: Iterable[int],
        backend: Optional[str] = None,
        context=None,
    ) -> Dict[int, np.ndarray]:
        """Section V-B backward vectors for several start times, cached.

        Missing start times are filled in by *one* shared backward pass
        from ``t_end`` down to the earliest missing start (the pass
        yields every intermediate ``v(t)`` for free), so asking for the
        vectors of ``k`` start times costs at most one pass -- not
        ``k``.
        """
        from repro.core.batch import backward_vectors as _run_backward

        wanted = sorted({int(t) for t in start_times})
        result: Dict[int, np.ndarray] = {}
        missing = []
        with self._lock:
            for start in wanted:
                key = self._key(
                    "backward", chain, window.region, backend,
                    (window.times, start),
                )
                cached = self._lookup(key)
                if cached is not None:
                    result[start] = cached
                else:
                    missing.append(start)
            if missing:
                self.stats.misses += len(missing)
                self.stats._count("backward")
        if missing:
            matrices = self.absorbing(chain, window.region, backend)
            computed = _run_backward(
                matrices, window, missing, context=context
            )
            with self._lock:
                for start, vector in computed.items():
                    vector.setflags(write=False)
                    key = self._key(
                        "backward", chain, window.region, backend,
                        (window.times, start),
                    )
                    result[start] = self._store(key, vector)
        return result

    def ktimes_blocks(
        self,
        chain: MarkovChain,
        window: SpatioTemporalWindow,
        start_times: Iterable[int],
        backend: Optional[str] = None,
        context=None,
    ) -> Dict[int, np.ndarray]:
        """Section VII suffix-count blocks for several start times, cached.

        The k-times analogue of :meth:`backward_vectors`:
        ``D(start)[s, k]`` answers any object observed at ``start``
        with pdf ``pi`` as ``pi . D(start)``.  Missing starts are
        filled by *one* shared :data:`~repro.exec.operators.KTIMES_CORE`
        recursion from ``t_end`` down to the earliest missing start,
        so asking for ``k`` start times costs at most one pass.
        """
        from repro.exec.operators import KTIMES_CORE

        wanted = sorted({int(t) for t in start_times})
        result: Dict[int, np.ndarray] = {}
        missing = []
        with self._lock:
            for start in wanted:
                key = self._key(
                    "ktimes_core", chain, window.region, backend,
                    (window.times, start),
                )
                cached = self._lookup(key)
                if cached is not None:
                    result[start] = cached
                else:
                    missing.append(start)
            if missing:
                self.stats.misses += len(missing)
                self.stats._count("ktimes_core")
        if missing:
            computed = KTIMES_CORE(
                (window, missing),
                chain,
                window.region,
                backend,
                context=context,
            )
            with self._lock:
                for start, block in computed.items():
                    block.setflags(write=False)
                    key = self._key(
                        "ktimes_core", chain, window.region, backend,
                        (window.times, start),
                    )
                    result[start] = self._store(key, block)
        return result
