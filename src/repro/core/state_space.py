"""Discrete state spaces.

The paper assumes a finite set of possible locations ``S = {s_1 ... s_|S|}``
(Section III).  States are identified by integer indices ``0 .. n-1``
throughout this library; a *state space* gives those indices geometric
meaning and translates geometric query regions into index sets.

Three concrete spaces cover the paper's scenarios:

* :class:`LineStateSpace` -- states on a 1-D integer line.  This is the
  synthetic setting of Section VIII (states ``[100, 120]`` etc.).
* :class:`GridStateSpace` -- a 2-D raster as in Figure 2 and the iceberg
  application.
* :class:`GraphStateSpace` -- nodes of a road network (the Munich / North
  America datasets of Section VIII-A).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import StateSpaceError

__all__ = [
    "StateSpace",
    "LineStateSpace",
    "GridStateSpace",
    "GraphStateSpace",
    "PointStateSpace",
]


class StateSpace(ABC):
    """Abstract finite state space.

    Subclasses fix the number of states and provide geometry-aware helpers
    to build query regions (sets of state indices).
    """

    def __init__(self, n_states: int) -> None:
        if n_states <= 0:
            raise StateSpaceError(f"state space must be non-empty, got {n_states}")
        self._n_states = int(n_states)

    @property
    def n_states(self) -> int:
        """Number of states ``|S|``."""
        return self._n_states

    def __len__(self) -> int:
        return self._n_states

    def check_state(self, state: int) -> int:
        """Validate a state index and return it."""
        if not (0 <= state < self._n_states):
            raise StateSpaceError(
                f"state {state} out of range [0, {self._n_states})"
            )
        return int(state)

    def check_region(self, region: Iterable[int]) -> FrozenSet[int]:
        """Validate a set of state indices and return it frozen."""
        frozen = frozenset(int(s) for s in region)
        for state in frozen:
            self.check_state(state)
        return frozen

    def complement(self, region: Iterable[int]) -> FrozenSet[int]:
        """Return ``S \\ region`` (used by the PST-for-all reduction)."""
        inside = self.check_region(region)
        return frozenset(range(self._n_states)) - inside

    @abstractmethod
    def location_of(self, state: int) -> Tuple[float, ...]:
        """Coordinates of a state in ``R^d``."""

    def all_states(self) -> range:
        """Iterator over all state indices."""
        return range(self._n_states)


class LineStateSpace(StateSpace):
    """States ``0 .. n-1`` placed at integer positions on a line.

    The synthetic experiments of the paper use this layout: an object in
    state ``s_i`` can only transition to states within
    ``[i - max_step/2, i + max_step/2]`` (Table I), and query regions are
    index intervals such as ``[100, 120]``.
    """

    def location_of(self, state: int) -> Tuple[float]:
        self.check_state(state)
        return (float(state),)

    def interval(self, low: int, high: int) -> FrozenSet[int]:
        """States with index in the inclusive range ``[low, high]``.

        The range is clipped to the state space, matching how the paper's
        generator treats boundary states.
        """
        if low > high:
            raise StateSpaceError(f"empty interval [{low}, {high}]")
        low = max(0, int(low))
        high = min(self._n_states - 1, int(high))
        if low > high:
            raise StateSpaceError(
                f"interval [{low}, {high}] lies outside the state space"
            )
        return frozenset(range(low, high + 1))


class GridStateSpace(StateSpace):
    """A rectangular 2-D raster of ``width x height`` cells.

    State index layout is row-major: state ``y * width + x`` is the cell in
    column ``x``, row ``y``.  Cell centres are the geometric locations.
    """

    def __init__(
        self,
        width: int,
        height: int,
        cell_size: float = 1.0,
        origin: Tuple[float, float] = (0.0, 0.0),
    ) -> None:
        if width <= 0 or height <= 0:
            raise StateSpaceError(
                f"grid dimensions must be positive, got {width}x{height}"
            )
        if cell_size <= 0:
            raise StateSpaceError(f"cell_size must be positive, got {cell_size}")
        super().__init__(width * height)
        self.width = int(width)
        self.height = int(height)
        self.cell_size = float(cell_size)
        self.origin = (float(origin[0]), float(origin[1]))

    # ------------------------------------------------------------------
    # index <-> cell <-> point conversions
    # ------------------------------------------------------------------
    def state_of_cell(self, x: int, y: int) -> int:
        """State index of the cell in column ``x``, row ``y``."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise StateSpaceError(
                f"cell ({x}, {y}) outside grid {self.width}x{self.height}"
            )
        return y * self.width + x

    def cell_of_state(self, state: int) -> Tuple[int, int]:
        """``(x, y)`` cell of a state index."""
        self.check_state(state)
        return state % self.width, state // self.width

    def state_of_point(self, px: float, py: float) -> int:
        """State whose cell contains the continuous point ``(px, py)``."""
        x = int(math.floor((px - self.origin[0]) / self.cell_size))
        y = int(math.floor((py - self.origin[1]) / self.cell_size))
        return self.state_of_cell(x, y)

    def location_of(self, state: int) -> Tuple[float, float]:
        x, y = self.cell_of_state(state)
        return (
            self.origin[0] + (x + 0.5) * self.cell_size,
            self.origin[1] + (y + 0.5) * self.cell_size,
        )

    # ------------------------------------------------------------------
    # regions
    # ------------------------------------------------------------------
    def box(self, x_min: int, y_min: int, x_max: int, y_max: int) -> FrozenSet[int]:
        """All states whose cell lies in the inclusive cell-index box."""
        if x_min > x_max or y_min > y_max:
            raise StateSpaceError(
                f"empty box ({x_min}, {y_min}) .. ({x_max}, {y_max})"
            )
        x_min = max(0, x_min)
        y_min = max(0, y_min)
        x_max = min(self.width - 1, x_max)
        y_max = min(self.height - 1, y_max)
        if x_min > x_max or y_min > y_max:
            raise StateSpaceError("box lies entirely outside the grid")
        return frozenset(
            y * self.width + x
            for y in range(y_min, y_max + 1)
            for x in range(x_min, x_max + 1)
        )

    def disk(self, cx: float, cy: float, radius: float) -> FrozenSet[int]:
        """All states whose cell centre is within ``radius`` of ``(cx, cy)``."""
        if radius < 0:
            raise StateSpaceError(f"radius must be non-negative, got {radius}")
        states = []
        for state in self.all_states():
            px, py = self.location_of(state)
            if (px - cx) ** 2 + (py - cy) ** 2 <= radius**2:
                states.append(state)
        return frozenset(states)

    def neighbors(self, state: int, diagonal: bool = True) -> List[int]:
        """Grid-adjacent states (4- or 8-neighbourhood)."""
        x, y = self.cell_of_state(state)
        offsets = [(-1, 0), (1, 0), (0, -1), (0, 1)]
        if diagonal:
            offsets += [(-1, -1), (-1, 1), (1, -1), (1, 1)]
        result = []
        for dx, dy in offsets:
            nx, ny = x + dx, y + dy
            if 0 <= nx < self.width and 0 <= ny < self.height:
                result.append(self.state_of_cell(nx, ny))
        return result


class GraphStateSpace(StateSpace):
    """States are the nodes of a (road) network.

    The paper's real datasets treat "each node ... as a state and each edge
    corresponds to two non-zero entries in the transition matrix".  Node
    labels may be arbitrary hashables; they are mapped to dense indices in
    the iteration order of ``nodes``.

    Args:
        nodes: sequence of node labels (order fixes state indices).
        edges: iterable of ``(u, v)`` label pairs; interpreted as undirected
            unless ``directed=True``.
        positions: optional ``{label: (x, y)}`` for geometric regions.
        directed: whether ``edges`` are one-way.
    """

    def __init__(
        self,
        nodes: Sequence[object],
        edges: Iterable[Tuple[object, object]],
        positions: Optional[Dict[object, Tuple[float, float]]] = None,
        directed: bool = False,
    ) -> None:
        node_list = list(nodes)
        super().__init__(len(node_list))
        self.nodes: List[object] = node_list
        self._index: Dict[object, int] = {
            label: i for i, label in enumerate(node_list)
        }
        if len(self._index) != len(node_list):
            raise StateSpaceError("duplicate node labels")
        self.positions = dict(positions) if positions else None
        self.directed = bool(directed)
        self._adjacency: List[List[int]] = [[] for _ in node_list]
        seen = set()
        for u, v in edges:
            ui, vi = self.index_of(u), self.index_of(v)
            for a, b in ((ui, vi),) if directed else ((ui, vi), (vi, ui)):
                if (a, b) not in seen and a != b:
                    seen.add((a, b))
                    self._adjacency[a].append(b)
        for out in self._adjacency:
            out.sort()

    def index_of(self, label: object) -> int:
        """State index of a node label."""
        try:
            return self._index[label]
        except KeyError:
            raise StateSpaceError(f"unknown node label {label!r}") from None

    def label_of(self, state: int) -> object:
        """Node label of a state index."""
        self.check_state(state)
        return self.nodes[state]

    def out_neighbors(self, state: int) -> List[int]:
        """Successor states of a node (sorted)."""
        self.check_state(state)
        return list(self._adjacency[state])

    def n_edges(self) -> int:
        """Number of directed adjacency entries (paper counts both ways)."""
        return sum(len(out) for out in self._adjacency)

    def location_of(self, state: int) -> Tuple[float, float]:
        if self.positions is None:
            raise StateSpaceError(
                "this graph state space has no node positions"
            )
        return tuple(self.positions[self.label_of(state)])  # type: ignore[return-value]

    def region_labels(self, labels: Iterable[object]) -> FrozenSet[int]:
        """Region from node labels."""
        return frozenset(self.index_of(label) for label in labels)

    def ball(self, center: object, hops: int) -> FrozenSet[int]:
        """All states within ``hops`` graph hops of ``center`` (BFS)."""
        if hops < 0:
            raise StateSpaceError(f"hops must be non-negative, got {hops}")
        start = self.index_of(center)
        frontier = {start}
        seen = {start}
        for _ in range(hops):
            nxt = set()
            for state in frontier:
                for succ in self._adjacency[state]:
                    if succ not in seen:
                        seen.add(succ)
                        nxt.add(succ)
            if not nxt:
                break
            frontier = nxt
        return frozenset(seen)

    def disk(self, cx: float, cy: float, radius: float) -> FrozenSet[int]:
        """All states with a position within ``radius`` of ``(cx, cy)``."""
        if self.positions is None:
            raise StateSpaceError(
                "this graph state space has no node positions"
            )
        result = []
        for state in self.all_states():
            px, py = self.location_of(state)
            if (px - cx) ** 2 + (py - cy) ** 2 <= radius**2:
                result.append(state)
        return frozenset(result)


class PointStateSpace(StateSpace):
    """States at explicit coordinates in ``R^d`` (``d`` of 1 or 2).

    The geometry a :class:`~repro.store.sharded.ShardedTrajectoryStore`
    persists: whatever space built the store, its per-state positions
    round-trip through ``positions.npy`` as a plain coordinate array,
    so a re-opened store keeps the geometric pre-filter and the
    displacement bounds without the original space object.
    """

    def __init__(self, positions) -> None:
        import numpy as np

        array = np.asarray(positions, dtype=float)
        if array.ndim == 1:
            array = array.reshape(-1, 1)  # a flat vector of 1-D positions
        if array.ndim != 2 or array.shape[1] > 2:
            raise StateSpaceError(
                f"positions must be 1-D or 2-D points, got "
                f"{array.shape[1]} columns"
            )
        super().__init__(array.shape[0])
        self._positions = array

    def location_of(self, state: int) -> Tuple[float, ...]:
        self.check_state(state)
        return tuple(float(x) for x in self._positions[state])

    @property
    def positions(self):
        """The ``(n_states, d)`` coordinate array."""
        return self._positions
