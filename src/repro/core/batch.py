"""Batched multi-object query evaluation.

The paper's reduction (Sections V--VI) turns one query over one object
into a sequence of sparse vector--matrix products.  A database query is
many objects sharing a chain, so the per-object row vectors can be
stacked into one ``(n_objects, size)`` matrix ``X`` and the whole
forward pass becomes *one* sparse-dense product ``X @ M_t`` per
timestep: ``O(objects x timesteps)`` vecmats collapse into
``O(timesteps)`` matmats, which is how the paper's Figure 9/11
experiments amortise the linear algebra.  Per row the products are
identical to the per-object path, so results agree exactly (asserted to
1e-12 in the test suite).

Three batched evaluators are provided, mirroring the per-object
functions of :mod:`repro.core.object_based` and
:mod:`repro.core.query_based`:

* :func:`batch_ob_exists` -- the Section V-A forward pass over the
  absorbing matrices, with mixed per-object start times handled by
  activating each object's row when the sweep reaches its observation
  timestamp;
* :func:`batch_qb_exists` -- the Section V-B backward pass run *once*
  (one pass serves every start time via :func:`backward_vectors`),
  then a single GEMV ``X @ v`` answers all objects of a start group;
* :func:`batch_exists_multi` -- the Section VI doubled-space forward
  pass with per-row Lemma 1 evidence fusion at each object's later
  observations.

All three accept an optional :class:`~repro.core.plan_cache.PlanCache`
so repeated windows skip matrix construction entirely.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.core.distribution import StateDistribution
from repro.core.errors import (
    InfeasibleEvidenceError,
    QueryError,
    ValidationError,
)
from repro.core.markov import MarkovChain
from repro.core.matrices import AbsorbingMatrices, DoubledMatrices
from repro.core.observation import ObservationSet
from repro.core.plan_cache import resolve_absorbing, resolve_doubled
from repro.core.query import SpatioTemporalWindow
from repro.linalg.ops import matvec
from repro.linalg.sparse import CSRMatrix

__all__ = [
    "backward_vectors",
    "batch_ob_exists",
    "batch_qb_exists",
    "batch_exists_multi",
    "batch_mc_exists",
]

StartTimes = Union[int, Sequence[int]]


def _normalize_starts(
    start_times: StartTimes, n_objects: int
) -> List[int]:
    if isinstance(start_times, (int, np.integer)):
        starts = [int(start_times)] * n_objects
    else:
        starts = [int(t) for t in start_times]
        if len(starts) != n_objects:
            raise ValidationError(
                f"{len(starts)} start times for {n_objects} objects"
            )
    for start in starts:
        if start < 0:
            raise QueryError(
                f"start_time must be non-negative, got {start}"
            )
    return starts


def _check_starts(
    window: SpatioTemporalWindow, starts: Sequence[int]
) -> None:
    for start in starts:
        if window.t_start < start:
            raise QueryError(
                f"query time {window.t_start} precedes the observation "
                f"at t={start}; extrapolation queries need all query "
                f"times >= the observation time"
            )


def _check_initials(
    chain: MarkovChain, initials: Sequence[StateDistribution]
) -> None:
    for initial in initials:
        if initial.n_states != chain.n_states:
            raise ValidationError(
                f"initial distribution over {initial.n_states} states, "
                f"chain over {chain.n_states}"
            )


def _rows_by_start(starts: Sequence[int]) -> Dict[int, List[int]]:
    groups: Dict[int, List[int]] = {}
    for row, start in enumerate(starts):
        groups.setdefault(start, []).append(row)
    return groups


class _ForwardStack:
    """The stacked distributions of all objects during one sweep.

    For the scipy backend the stack is kept *transposed* -- a
    C-contiguous ``(size, n_objects)`` array -- so each transition is
    ``M^T @ X^T`` over the matrices' cached transposes: one CSR
    matvecs kernel call per timestep with no copies in the loop
    (measurably faster than ``X @ M``, which scipy evaluates through
    CSC).  The pure-Python backend falls back to row-wise
    :func:`~repro.linalg.ops.matmat`.
    """

    def __init__(self, matrices, n_objects: int) -> None:
        self.matrices = matrices
        self._transposed = not isinstance(matrices.m_minus, CSRMatrix)
        if self._transposed:
            self.stack = np.zeros(
                (matrices.size, n_objects), dtype=float
            )
        else:
            self.stack = np.zeros(
                (n_objects, matrices.size), dtype=float
            )

    def set_row(self, row: int, vector: np.ndarray) -> None:
        if self._transposed:
            self.stack[:, row] = vector
        else:
            self.stack[row] = vector

    def row(self, row: int) -> np.ndarray:
        return (
            self.stack[:, row] if self._transposed else self.stack[row]
        )

    def column(self, index: int) -> np.ndarray:
        """One entry per object (e.g. the TOP component)."""
        return (
            self.stack[index].copy()
            if self._transposed
            else self.stack[:, index].copy()
        )

    def tail_sums(self, row: int, offset: int) -> float:
        """Sum of entries ``offset:`` of one object's vector."""
        return float(self.row(row)[offset:].sum())

    def step(self, time: int, times) -> None:
        if self._transposed:
            minus_t, plus_t = self.matrices.transposed()
            matrix = plus_t if time in times else minus_t
            self.stack = matrix @ self.stack
        else:
            self.stack = np.asarray(
                self.matrices.backend.matmat(
                    self.stack,
                    self.matrices.matrix_for_target_time(time, times),
                ),
                dtype=float,
            )


def backward_vectors(
    matrices: AbsorbingMatrices,
    window: SpatioTemporalWindow,
    start_times: Iterable[int],
) -> Dict[int, np.ndarray]:
    """Section V-B backward vectors for every requested start time.

    One pass from ``t_end`` down to the earliest start yields ``v(t)``
    for *all* intermediate ``t``; the requested ones are copied out.
    Each returned vector is bit-identical to the one
    :class:`~repro.core.query_based.QueryBasedEvaluator` computes for
    that start time alone.
    """
    wanted = sorted({int(t) for t in start_times})
    if not wanted:
        return {}
    if wanted[0] < 0:
        raise QueryError(
            f"start_time must be non-negative, got {wanted[0]}"
        )
    if window.t_start < wanted[-1]:
        raise QueryError(
            f"query time {window.t_start} precedes start_time "
            f"{wanted[-1]}"
        )
    vector = np.zeros(matrices.size, dtype=float)
    vector[matrices.top_index] = 1.0
    result: Dict[int, np.ndarray] = {}
    if window.t_end in wanted:  # degenerate: observation at t_end
        result[window.t_end] = vector.copy()
    remaining = set(wanted) - set(result)
    for time in range(window.t_end - 1, wanted[0] - 1, -1):
        matrix = matrices.matrix_for_target_time(
            time + 1, window.times
        )
        vector = np.asarray(matvec(matrix, vector), dtype=float)
        if time in remaining:
            result[time] = vector.copy()
    return result


def batch_ob_exists(
    chain: MarkovChain,
    initials: Sequence[StateDistribution],
    window: SpatioTemporalWindow,
    start_times: StartTimes = 0,
    matrices: Optional[AbsorbingMatrices] = None,
    backend: Optional[str] = None,
    plan_cache=None,
) -> np.ndarray:
    """Object-based PST-exists for many objects in one forward sweep.

    Args:
        chain: the Markov model shared by the objects.
        initials: one observation distribution per object.
        window: the query window ``S_q x T_q``.
        start_times: one observation timestamp per object (or a single
            shared one).  Objects observed later join the sweep when it
            reaches their timestamp, so mixed starts cost one pass, not
            one pass per start.
        matrices: pre-built absorbing matrices (else cache/build).
        backend: linear-algebra backend name.
        plan_cache: optional :class:`~repro.core.plan_cache.PlanCache`
            supplying the matrices.

    Returns:
        ``P_exists`` per object, aligned with ``initials``.
    """
    n_objects = len(initials)
    window.validate_for(chain.n_states)
    if n_objects == 0:
        return np.zeros(0, dtype=float)
    _check_initials(chain, initials)
    starts = _normalize_starts(start_times, n_objects)
    _check_starts(window, starts)
    matrices = resolve_absorbing(
        chain, window.region, backend, plan_cache, matrices
    )

    stack = _ForwardStack(matrices, n_objects)
    by_start = _rows_by_start(starts)

    def activate(time: int) -> None:
        for row in by_start.get(time, ()):
            stack.set_row(row, matrices.extend_initial(
                np.asarray(initials[row].vector, dtype=float),
                time,
                window.times,
            ))

    first = min(starts)
    activate(first)
    for time in range(first + 1, window.t_end + 1):
        stack.step(time, window.times)
        activate(time)
    return stack.column(matrices.top_index)


def batch_qb_exists(
    chain: MarkovChain,
    initials: Sequence[StateDistribution],
    window: SpatioTemporalWindow,
    start_times: StartTimes = 0,
    matrices: Optional[AbsorbingMatrices] = None,
    backend: Optional[str] = None,
    plan_cache=None,
) -> np.ndarray:
    """Query-based PST-exists for many objects: one backward pass,
    one GEMV per start-time group.

    Arguments mirror :func:`batch_ob_exists`.  With a ``plan_cache``
    the backward vectors themselves are reused across queries, so a
    repeated window costs only the final dot products.
    """
    n_objects = len(initials)
    window.validate_for(chain.n_states)
    if n_objects == 0:
        return np.zeros(0, dtype=float)
    _check_initials(chain, initials)
    starts = _normalize_starts(start_times, n_objects)
    _check_starts(window, starts)
    unique_starts = sorted(set(starts))
    if plan_cache is not None and matrices is None:
        # cache the backward vectors themselves, not just the matrices
        vectors = plan_cache.backward_vectors(
            chain, window, unique_starts, backend
        )
        matrices = plan_cache.absorbing(chain, window.region, backend)
    else:
        matrices = resolve_absorbing(
            chain, window.region, backend, None, matrices
        )
        vectors = backward_vectors(matrices, window, unique_starts)

    result = np.zeros(n_objects, dtype=float)
    for start, rows in _rows_by_start(starts).items():
        stack = np.stack([
            matrices.extend_initial(
                np.asarray(initials[row].vector, dtype=float),
                start,
                window.times,
            )
            for row in rows
        ])
        result[rows] = stack @ vectors[start]
    return result


def batch_exists_multi(
    chain: MarkovChain,
    observation_sets: Sequence[ObservationSet],
    window: SpatioTemporalWindow,
    matrices: Optional[DoubledMatrices] = None,
    backend: Optional[str] = None,
    plan_cache=None,
) -> np.ndarray:
    """Section VI PST-exists for many multi-observation objects at once.

    All objects advance through the doubled state space in one stacked
    sweep; Lemma 1 evidence fusion (elementwise product with the tiled
    observation pdf, then renormalisation) is applied per row at each
    object's later observation timestamps.  Each object's answer is
    read off at its own final timestamp, exactly as the per-object
    :func:`~repro.core.object_based.ob_exists_probability_multi` does.

    Raises:
        InfeasibleEvidenceError: when any object's observations are
            mutually contradictory under the chain.
    """
    n_objects = len(observation_sets)
    window.validate_for(chain.n_states)
    if n_objects == 0:
        return np.zeros(0, dtype=float)
    for observations in observation_sets:
        if observations.n_states != chain.n_states:
            raise ValidationError(
                f"observations over {observations.n_states} states, "
                f"chain over {chain.n_states}"
            )
    starts = [observations.first.time for observations in observation_sets]
    _normalize_starts(starts, n_objects)
    _check_starts(window, starts)
    matrices = resolve_doubled(
        chain, window.region, backend, plan_cache, matrices
    )

    finals = [
        max(window.t_end, observations.last.time)
        for observations in observation_sets
    ]
    fusions: Dict[int, List[tuple]] = {}
    for row, observations in enumerate(observation_sets):
        for observation in observations.after(starts[row]):
            fusions.setdefault(observation.time, []).append((
                row,
                matrices.tile_observation(
                    np.asarray(
                        observation.distribution.vector, dtype=float
                    )
                ),
            ))
    by_start = _rows_by_start(starts)
    by_final = _rows_by_start(finals)

    stack = _ForwardStack(matrices, n_objects)
    result = np.zeros(n_objects, dtype=float)
    n = matrices.n_states

    def activate(time: int) -> None:
        for row in by_start.get(time, ()):
            stack.set_row(row, matrices.extend_initial(
                np.asarray(
                    observation_sets[row].first.distribution.vector,
                    dtype=float,
                ),
                time,
                window.times,
            ))

    def harvest(time: int) -> None:
        for row in by_final.get(time, ()):
            result[row] = stack.tail_sums(row, n)

    first = min(starts)
    activate(first)
    harvest(first)
    for time in range(first + 1, max(finals) + 1):
        stack.step(time, window.times)
        activate(time)
        for row, tiled in fusions.get(time, ()):
            fused = stack.row(row) * tiled
            total = float(fused.sum())
            if total <= 0.0:
                raise InfeasibleEvidenceError(
                    f"observation at t={time} contradicts the "
                    f"trajectory model: posterior mass is zero"
                )
            stack.set_row(row, fused / total)
        harvest(time)
    return result


def batch_mc_exists(
    chain: MarkovChain,
    observation_sets: Sequence[ObservationSet],
    window: SpatioTemporalWindow,
    n_samples: int = 100,
    seeds: Optional[Sequence[Optional[int]]] = None,
) -> np.ndarray:
    """Monte-Carlo PST-exists for many objects sharing a chain.

    One :class:`~repro.core.montecarlo.MonteCarloSampler` serves every
    object (its per-chain CDF tables are built once), reseeded per
    object from ``seeds``.  Per-object seeding keeps each estimate
    independent of which other objects a pruning stage removed, so the
    pipeline's filtered MC path reproduces the unfiltered one draw for
    draw on every surviving object.

    Args:
        chain: the Markov model shared by the objects.
        observation_sets: one observation set per object; objects with
            several observations use the Section VI multi-observation
            estimator.
        window: the query window.
        n_samples: sampled paths per object (paper default 100).
        seeds: one RNG seed per object (``None`` entries sample
            nondeterministically); omitted = all nondeterministic.

    Returns:
        Estimated ``P_exists`` per object, aligned with
        ``observation_sets``.
    """
    from repro.core.montecarlo import MonteCarloSampler

    n_objects = len(observation_sets)
    window.validate_for(chain.n_states)
    if n_objects == 0:
        return np.zeros(0, dtype=float)
    if seeds is None:
        seeds = [None] * n_objects
    if len(seeds) != n_objects:
        raise ValidationError(
            f"{len(seeds)} seeds for {n_objects} objects"
        )
    sampler = MonteCarloSampler(chain)
    result = np.zeros(n_objects, dtype=float)
    for row, observations in enumerate(observation_sets):
        sampler.reseed(seeds[row])
        if len(observations) > 1:
            estimate = sampler.exists_probability_multi(
                observations, window, n_samples
            )
        else:
            estimate = sampler.exists_probability(
                observations.first.distribution,
                window,
                n_samples,
                start_time=observations.first.time,
            )
        result[row] = estimate.estimate
    return result
