"""Batched multi-object query evaluation.

The paper's reduction (Sections V--VI) turns one query over one object
into a sequence of sparse vector--matrix products.  A database query is
many objects sharing a chain, so the per-object row vectors can be
stacked into one ``(n_objects, size)`` matrix ``X`` and the whole
forward pass becomes *one* sparse-dense product ``X @ M_t`` per
timestep: ``O(objects x timesteps)`` vecmats collapse into
``O(timesteps)`` matmats, which is how the paper's Figure 9/11
experiments amortise the linear algebra.  Per row the products are
identical to the per-object path, so results agree exactly (asserted to
1e-12 in the test suite).

Since the operator-layer refactor these functions are thin schedule
builders over :mod:`repro.exec.operators`: the sweeps themselves run as
:data:`~repro.exec.operators.FORWARD_SWEEP` /
:data:`~repro.exec.operators.BACKWARD_SWEEP` /
:data:`~repro.exec.operators.MC_SAMPLE`, the *same* operator instances
the per-object fallbacks, the streaming ladder, and the process-pool
shard workers of :mod:`repro.exec.dispatch` execute.  Three batched
evaluators are provided, mirroring the per-object functions of
:mod:`repro.core.object_based` and :mod:`repro.core.query_based`:

* :func:`batch_ob_exists` -- the Section V-A forward pass over the
  absorbing matrices, with mixed per-object start times handled by
  activating each object's row when the sweep reaches its observation
  timestamp;
* :func:`batch_qb_exists` -- the Section V-B backward pass run *once*
  (one pass serves every start time via :func:`backward_vectors`),
  then a single GEMV ``X @ v`` answers all objects of a start group;
* :func:`batch_exists_multi` -- the Section VI doubled-space forward
  pass with per-row Lemma 1 evidence fusion at each object's later
  observations.

All three accept an optional :class:`~repro.core.plan_cache.PlanCache`
so repeated windows skip matrix construction entirely, and an optional
:class:`~repro.exec.operators.ExecutionContext` collecting per-operator
timings for EXPLAIN ANALYZE output.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.core.distribution import StateDistribution
from repro.core.errors import QueryError, ValidationError
from repro.core.markov import MarkovChain
from repro.core.matrices import AbsorbingMatrices, DoubledMatrices
from repro.core.observation import ObservationSet
from repro.core.query import SpatioTemporalWindow
from repro.exec.operators import (
    BACKWARD_SWEEP,
    BUILD_ABSORBING,
    BUILD_DOUBLED,
    FORWARD_SWEEP,
    KTIMES_SWEEP,
    MC_SAMPLE,
    ExecutionContext,
    KTimesSchedule,
    SweepSchedule,
)

__all__ = [
    "backward_vectors",
    "batch_ob_exists",
    "batch_qb_exists",
    "batch_exists_multi",
    "batch_mc_exists",
    "batch_ktimes_distribution",
]

StartTimes = Union[int, Sequence[int]]


def _normalize_starts(
    start_times: StartTimes, n_objects: int
) -> List[int]:
    if isinstance(start_times, (int, np.integer)):
        starts = [int(start_times)] * n_objects
    else:
        starts = [int(t) for t in start_times]
        if len(starts) != n_objects:
            raise ValidationError(
                f"{len(starts)} start times for {n_objects} objects"
            )
    for start in starts:
        if start < 0:
            raise QueryError(
                f"start_time must be non-negative, got {start}"
            )
    return starts


def _check_starts(
    window: SpatioTemporalWindow, starts: Sequence[int]
) -> None:
    for start in starts:
        if window.t_start < start:
            raise QueryError(
                f"query time {window.t_start} precedes the observation "
                f"at t={start}; extrapolation queries need all query "
                f"times >= the observation time"
            )


def _check_initials(
    chain: MarkovChain, initials: Sequence[StateDistribution]
) -> None:
    for initial in initials:
        if initial.n_states != chain.n_states:
            raise ValidationError(
                f"initial distribution over {initial.n_states} states, "
                f"chain over {chain.n_states}"
            )


def _rows_by_start(starts: Sequence[int]) -> Dict[int, List[int]]:
    groups: Dict[int, List[int]] = {}
    for row, start in enumerate(starts):
        groups.setdefault(start, []).append(row)
    return groups


def backward_vectors(
    matrices: AbsorbingMatrices,
    window: SpatioTemporalWindow,
    start_times: Iterable[int],
    context: Optional[ExecutionContext] = None,
) -> Dict[int, np.ndarray]:
    """Section V-B backward vectors for every requested start time.

    One pass from ``t_end`` down to the earliest start yields ``v(t)``
    for *all* intermediate ``t``; the requested ones are copied out.
    Each returned vector is bit-identical to the one
    :class:`~repro.core.query_based.QueryBasedEvaluator` computes for
    that start time alone.  Delegates to
    :data:`~repro.exec.operators.BACKWARD_SWEEP`.
    """
    return BACKWARD_SWEEP(
        (matrices, window, start_times),
        region=window.region,
        context=context,
    )


def batch_ob_exists(
    chain: MarkovChain,
    initials: Sequence[StateDistribution],
    window: SpatioTemporalWindow,
    start_times: StartTimes = 0,
    matrices: Optional[AbsorbingMatrices] = None,
    backend: Optional[str] = None,
    plan_cache=None,
    context: Optional[ExecutionContext] = None,
) -> np.ndarray:
    """Object-based PST-exists for many objects in one forward sweep.

    Args:
        chain: the Markov model shared by the objects.
        initials: one observation distribution per object.
        window: the query window ``S_q x T_q``.
        start_times: one observation timestamp per object (or a single
            shared one).  Objects observed later join the sweep when it
            reaches their timestamp, so mixed starts cost one pass, not
            one pass per start.
        matrices: pre-built absorbing matrices (else cache/build).
        backend: linear-algebra backend name.
        plan_cache: optional :class:`~repro.core.plan_cache.PlanCache`
            supplying the matrices.
        context: optional operator-timing context.

    Returns:
        ``P_exists`` per object, aligned with ``initials``.
    """
    n_objects = len(initials)
    window.validate_for(chain.n_states)
    if n_objects == 0:
        return np.zeros(0, dtype=float)
    _check_initials(chain, initials)
    starts = _normalize_starts(start_times, n_objects)
    _check_starts(window, starts)
    matrices = BUILD_ABSORBING(
        matrices, chain, window.region, backend,
        context=context, plan_cache=plan_cache,
    )

    activations: Dict[int, List] = {}
    for row, start in enumerate(starts):
        activations.setdefault(start, []).append(
            (row, initials[row].vector)
        )
    first = min(starts)
    schedule = SweepSchedule(
        n_rows=n_objects,
        first=first,
        last=window.t_end,
        times=window.times,
        activations=activations,
        harvests={window.t_end: list(range(n_objects))},
        read="top",
        read_offset=matrices.top_index,
    )
    return FORWARD_SWEEP(
        (matrices, schedule), chain, window.region, backend,
        context=context,
    )


def batch_qb_exists(
    chain: MarkovChain,
    initials: Sequence[StateDistribution],
    window: SpatioTemporalWindow,
    start_times: StartTimes = 0,
    matrices: Optional[AbsorbingMatrices] = None,
    backend: Optional[str] = None,
    plan_cache=None,
    context: Optional[ExecutionContext] = None,
) -> np.ndarray:
    """Query-based PST-exists for many objects: one backward pass,
    one GEMV per start-time group.

    Arguments mirror :func:`batch_ob_exists`.  With a ``plan_cache``
    the backward vectors themselves are reused across queries, so a
    repeated window costs only the final dot products.
    """
    n_objects = len(initials)
    window.validate_for(chain.n_states)
    if n_objects == 0:
        return np.zeros(0, dtype=float)
    _check_initials(chain, initials)
    starts = _normalize_starts(start_times, n_objects)
    _check_starts(window, starts)
    unique_starts = sorted(set(starts))
    if plan_cache is not None and matrices is None:
        # cache the backward vectors themselves, not just the matrices
        vectors = plan_cache.backward_vectors(
            chain, window, unique_starts, backend, context=context
        )
        matrices = plan_cache.absorbing(chain, window.region, backend)
    else:
        matrices = BUILD_ABSORBING(
            matrices, chain, window.region, backend, context=context
        )
        vectors = backward_vectors(
            matrices, window, unique_starts, context=context
        )

    result = np.zeros(n_objects, dtype=float)
    for start, rows in _rows_by_start(starts).items():
        stack = np.stack([
            matrices.extend_initial(
                np.asarray(initials[row].vector, dtype=float),
                start,
                window.times,
            )
            for row in rows
        ])
        result[rows] = stack @ vectors[start]
    return result


def batch_exists_multi(
    chain: MarkovChain,
    observation_sets: Sequence[ObservationSet],
    window: SpatioTemporalWindow,
    matrices: Optional[DoubledMatrices] = None,
    backend: Optional[str] = None,
    plan_cache=None,
    context: Optional[ExecutionContext] = None,
) -> np.ndarray:
    """Section VI PST-exists for many multi-observation objects at once.

    All objects advance through the doubled state space in one stacked
    sweep; Lemma 1 evidence fusion (elementwise product with the tiled
    observation pdf, then renormalisation) is applied per row at each
    object's later observation timestamps.  Each object's answer is
    read off at its own final timestamp, exactly as the per-object
    :func:`~repro.core.object_based.ob_exists_probability_multi` does.

    Raises:
        InfeasibleEvidenceError: when any object's observations are
            mutually contradictory under the chain.
    """
    n_objects = len(observation_sets)
    window.validate_for(chain.n_states)
    if n_objects == 0:
        return np.zeros(0, dtype=float)
    for observations in observation_sets:
        if observations.n_states != chain.n_states:
            raise ValidationError(
                f"observations over {observations.n_states} states, "
                f"chain over {chain.n_states}"
            )
    starts = [observations.first.time for observations in observation_sets]
    _normalize_starts(starts, n_objects)
    _check_starts(window, starts)
    matrices = BUILD_DOUBLED(
        matrices, chain, window.region, backend,
        context=context, plan_cache=plan_cache,
    )

    activations: Dict[int, List] = {}
    for row, observations in enumerate(observation_sets):
        activations.setdefault(starts[row], []).append(
            (row, observations.first.distribution.vector)
        )
    fusions: Dict[int, List] = {}
    for row, observations in enumerate(observation_sets):
        for observation in observations.after(starts[row]):
            fusions.setdefault(observation.time, []).append((
                row,
                matrices.tile_observation(
                    np.asarray(
                        observation.distribution.vector, dtype=float
                    )
                ),
            ))
    harvests: Dict[int, List[int]] = {}
    finals = [
        max(window.t_end, observations.last.time)
        for observations in observation_sets
    ]
    for row, final in enumerate(finals):
        harvests.setdefault(final, []).append(row)

    schedule = SweepSchedule(
        n_rows=n_objects,
        first=min(starts),
        last=max(finals),
        times=window.times,
        activations=activations,
        fusions=fusions,
        harvests=harvests,
        read="tail",
        read_offset=matrices.n_states,
    )
    return FORWARD_SWEEP(
        (matrices, schedule), chain, window.region, backend,
        context=context,
    )


def batch_ktimes_distribution(
    chain: MarkovChain,
    initials: Sequence[StateDistribution],
    window: SpatioTemporalWindow,
    start_times: StartTimes = 0,
    backend: Optional[str] = None,
    plan_cache=None,
    context: Optional[ExecutionContext] = None,
) -> np.ndarray:
    """Section VII visit-count distributions for many objects at once.

    Two batched forms of the C(t) algorithm, picked per object:

    * observations *strictly before* the window ride the suffix-count
      decomposition (:data:`~repro.exec.operators.KTIMES_CORE`): one
      shared backward recursion from ``t_end`` down to the earliest
      start yields a ``(|S|, |T_q|+1)`` block ``D(start)`` per start
      time, and a whole start group answers with a single dense GEMM
      ``X @ D(start)`` -- the k-times analogue of
      :func:`batch_qb_exists`, amortising one pass over arbitrarily
      many objects.  With a ``plan_cache`` the blocks themselves are
      reused across queries.
    * observations *at* the window start (footnote 3: the observation
      time is itself a query time) run the stacked
      :data:`~repro.exec.operators.KTIMES_SWEEP` cohort: one sparse
      product plus one cohort-wide column shift per timestep, the
      batched analogue of :func:`batch_ob_exists`.

    Per object the result is identical (to 1e-12) to
    :func:`repro.core.ktimes.ktimes_distribution`.

    Args:
        chain: the Markov model shared by the objects.
        initials: one observation distribution per object.
        window: the query window ``S_q x T_q``.
        start_times: one observation timestamp per object (or a single
            shared one); each must be ``<= min(T_q)``.
        backend: linear-algebra backend name (cache keys and timing
            attribution; the kernels always run on the chain's CSR).
        plan_cache: optional :class:`~repro.core.plan_cache.PlanCache`
            supplying (and retaining) the suffix-count blocks.
        context: optional operator-timing context.

    Returns:
        ``(n_objects, |T_q| + 1)`` array; row ``i`` is object ``i``'s
        distribution over exact visit counts (each row sums to one).
    """
    n_objects = len(initials)
    window.validate_for(chain.n_states)
    n_rows = window.duration + 1
    if n_objects == 0:
        return np.zeros((0, n_rows), dtype=float)
    _check_initials(chain, initials)
    starts = _normalize_starts(start_times, n_objects)
    _check_starts(window, starts)
    result = np.zeros((n_objects, n_rows), dtype=float)

    before = [
        row for row in range(n_objects)
        if starts[row] < window.t_start
    ]
    at_start = [
        row for row in range(n_objects)
        if starts[row] == window.t_start
    ]
    if before:
        if plan_cache is not None:
            blocks = plan_cache.ktimes_blocks(
                chain,
                window,
                [starts[row] for row in before],
                backend,
                context=context,
            )
        else:
            from repro.exec.operators import KTIMES_CORE

            blocks = KTIMES_CORE(
                (window, [starts[row] for row in before]),
                chain,
                window.region,
                backend,
                context=context,
            )
        for start, rows in _rows_by_start(
            [starts[row] for row in before]
        ).items():
            group = [before[row] for row in rows]
            stack = np.stack([
                np.asarray(initials[row].vector, dtype=float)
                for row in group
            ])
            result[group] = stack @ blocks[start]
    if at_start:
        region_columns = np.fromiter(
            window.region, dtype=int, count=len(window.region)
        )
        region_columns.sort()
        activations: Dict[int, List] = {}
        for index, row in enumerate(at_start):
            activations.setdefault(starts[row], []).append(
                (index, initials[row].vector)
            )
        schedule = KTimesSchedule(
            n_objects=len(at_start),
            n_rows=n_rows,
            first=window.t_start,
            last=window.t_end,
            times=window.times,
            region_columns=region_columns,
            activations=activations,
        )
        result[at_start] = KTIMES_SWEEP(
            schedule, chain, window.region, backend, context=context
        )
    return result


def batch_mc_exists(
    chain: MarkovChain,
    observation_sets: Sequence[ObservationSet],
    window: SpatioTemporalWindow,
    n_samples: int = 100,
    seeds: Optional[Sequence[Optional[int]]] = None,
    context: Optional[ExecutionContext] = None,
) -> np.ndarray:
    """Monte-Carlo PST-exists for many objects sharing a chain.

    One :class:`~repro.core.montecarlo.MonteCarloSampler` serves every
    object (its per-chain CDF tables are built once), reseeded per
    object from ``seeds``.  Per-object seeding keeps each estimate
    independent of which other objects a pruning stage removed, so the
    pipeline's filtered MC path reproduces the unfiltered one draw for
    draw on every surviving object.

    Args:
        chain: the Markov model shared by the objects.
        observation_sets: one observation set per object; objects with
            several observations use the Section VI multi-observation
            estimator.
        window: the query window.
        n_samples: sampled paths per object (paper default 100).
        seeds: one RNG seed per object (``None`` entries sample
            nondeterministically); omitted = all nondeterministic.
        context: optional operator-timing context.

    Returns:
        Estimated ``P_exists`` per object, aligned with
        ``observation_sets``.
    """
    n_objects = len(observation_sets)
    window.validate_for(chain.n_states)
    if n_objects == 0:
        return np.zeros(0, dtype=float)
    if seeds is None:
        seeds = [None] * n_objects
    if len(seeds) != n_objects:
        raise ValidationError(
            f"{len(seeds)} seeds for {n_objects} objects"
        )
    return MC_SAMPLE(
        (observation_sets, window, n_samples, seeds),
        chain, window.region, None,
        context=context,
    )
