"""Cost-based query planning.

The paper's evaluation (Section VIII) shows that query-based and
object-based processing trade off *data-dependently*: QB amortises one
backward pass over arbitrarily many objects but pays a per-object dot
product over the full state vector, OB's stacked forward sweep is
cheaper for small groups, Monte-Carlo only competes when approximation
is acceptable, and Section V-C pruning pays off exactly when the window
is selective.  Up to now the *caller* had to make those choices; this
module makes the engine plan its own execution:

* :class:`CostModel` -- a small set of interpretable coefficients that
  turn group features (object counts, chain size and sparsity, query
  horizon, plan-cache hits) into estimated evaluation costs;
* :class:`QueryPlanner` -- builds a :class:`QueryPlan` per query,
  choosing a processing method per *chain group* and deciding whether
  to run the geometric pre-filter, the exact BFS reachability filter,
  and the parallel group dispatch;
* :class:`PlanOptions` -- per-query overrides (force a method, force a
  filter on/off, cap the worker pool), replacing the old boolean
  ``prune=`` flag;
* :class:`QueryPlan` / :class:`GroupPlan` / :class:`StageStats` -- the
  EXPLAIN-style artefact the pipeline fills with per-stage candidate
  counts and timings, returned on every
  :class:`~repro.core.engine.QueryResult`.

Every choice the planner makes is between *exact* strategies (unless
``allow_approximate`` opts into MC), so planned execution is
bit-compatible with any forced method -- the property the test suite
asserts to 1e-12.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.core.errors import QueryError, ValidationError
from repro.core.query import (
    PSTExistsQuery,
    PSTForAllQuery,
    PSTKTimesQuery,
    PSTQuery,
    SpatioTemporalWindow,
)
from repro.database.objects import UncertainObject

__all__ = [
    "CostModel",
    "PlanOptions",
    "SupervisorPolicy",
    "GroupPlan",
    "StageStats",
    "QueryPlan",
    "QueryPlanner",
]

_EXACT_METHODS = ("qb", "ob")
_ALL_METHODS = ("qb", "ob", "mc")
_DISPATCH_MODES = ("serial", "thread", "process")

#: CostModel fields the calibration harness fits (kernel coefficients,
#: as opposed to the stage-decision thresholds, which stay structural).
CALIBRATED_COEFFICIENTS = (
    "sweep_unit",
    "dense_sweep_unit",
    "dot_unit",
    "build_unit",
    "mc_step_unit",
    "ktimes_unit",
    "object_overhead",
)


def _require_int(name: str, value, minimum: int) -> None:
    """Eager type+range check; names the offending value.

    Values like ``max_workers=2.5`` or ``max_workers="4"`` used to
    slip through planning and explode deep inside pool acquisition
    with a bare ``TypeError``; every integral knob is now rejected at
    option-construction time instead.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(
            f"{name} must be an int, got {value!r} "
            f"({type(value).__name__})"
        )
    if value < minimum:
        raise ValidationError(
            f"{name} must be >= {minimum}, got {value!r}"
        )


@dataclass(frozen=True)
class SupervisorPolicy:
    """Knobs of the supervised process dispatch of
    :mod:`repro.exec.dispatch`.

    Every dispatched task runs under a deadline priced from the cost
    model (``predicted seconds x timeout_multiplier``, floored at
    ``timeout_floor``, or the explicit ``timeout_seconds``).  A task
    that crashes its worker, loses a shared-memory segment, or times
    out is retried on a rebuilt pool with exponential backoff up to
    ``max_retries`` times; past that the dispatch call raises and the
    pipeline degrades process -> thread -> serial (recorded on
    ``plan.degradations`` and warned as
    :class:`~repro.core.errors.DegradedExecutionWarning`).

    Attributes:
        timeout_seconds: explicit per-attempt deadline; ``None``
            prices it from the cost model.
        timeout_multiplier: safety factor over the predicted seconds.
        timeout_floor: smallest deadline ever enforced (cost
            predictions for tiny tasks are noisy; a too-tight deadline
            would turn scheduler jitter into spurious pool teardowns).
        max_retries: failed attempts retried before the dispatch call
            gives up (``2`` means up to three attempts in total).
        backoff_seconds: sleep before the first retry; doubles each
            further retry.
        verify_segments: re-checksum shared-memory payloads on worker
            attach, so a corrupted segment fails loudly as
            :class:`~repro.core.errors.SegmentLostError` instead of
            silently producing wrong numbers (off by default: the
            publication checksum is always recorded, verification
            costs one pass over the payload per worker rehydration).
    """

    timeout_seconds: Optional[float] = None
    timeout_multiplier: float = 8.0
    timeout_floor: float = 30.0
    max_retries: int = 2
    backoff_seconds: float = 0.05
    verify_segments: bool = False

    def __post_init__(self) -> None:
        if self.timeout_seconds is not None and not (
            isinstance(self.timeout_seconds, (int, float))
            and not isinstance(self.timeout_seconds, bool)
            and self.timeout_seconds > 0
        ):
            raise ValidationError(
                f"timeout_seconds must be a positive number or None, "
                f"got {self.timeout_seconds!r}"
            )
        for name in ("timeout_multiplier", "timeout_floor", "backoff_seconds"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ) or value < 0:
                raise ValidationError(
                    f"{name} must be a non-negative number, got "
                    f"{value!r}"
                )
        _require_int("max_retries", self.max_retries, 0)

    def deadline(self, predicted_seconds: float) -> float:
        """The per-attempt deadline for a task of this predicted size."""
        if self.timeout_seconds is not None:
            return float(self.timeout_seconds)
        return max(
            self.timeout_floor,
            self.timeout_multiplier * predicted_seconds,
        )


@dataclass(frozen=True)
class PlanOptions:
    """Per-query planning overrides.

    Every field defaults to "let the planner decide"; forcing a value
    turns the corresponding decision off.  This replaces the engine's
    deprecated boolean ``prune=`` flag.

    Attributes:
        method: force ``"qb"``, ``"ob"`` or ``"mc"`` for every chain
            group instead of the cost-based choice.
        prefilter: force the R-tree geometric pre-filter on or off.
        bfs_prune: force the exact BFS reachability filter on or off.
        parallel: force parallel chain-group dispatch on or off
            (legacy toggle; ``True`` means thread dispatch unless
            ``dispatch`` says otherwise).
        dispatch: force the execution mode -- ``"serial"``,
            ``"thread"`` (chain groups across a thread pool) or
            ``"process"`` (chain groups *and* within-chain object
            shards across a shared-memory process pool, see
            :mod:`repro.exec.dispatch`).  ``None`` lets the cost
            model choose.
        max_workers: worker-pool size cap for parallel dispatch.
        allow_approximate: let the cost model pick Monte-Carlo when it
            is the cheapest strategy (off by default: planned execution
            then stays exact and method-independent).
        n_samples: Monte-Carlo sample count.
        seed: Monte-Carlo base seed; each object samples from its own
            stream derived from this, so estimates do not depend on
            which other objects were pruned.
        cost_model: override the engine's cost model for this query.
        auto_stream: let :meth:`~repro.core.engine.QueryEngine.evaluate`
            detect a re-issued window whose times slid by the same
            constant stride on two consecutive re-issues and
            transparently delegate to a standing query
            (:meth:`~repro.core.engine.QueryEngine.watch` /
            :meth:`~repro.core.streaming.StandingQuery.tick`); the
            delegated plan is flagged ``auto_streamed`` in
            ``explain()`` output.
        supervisor: fault-tolerance knobs of the process dispatch
            (per-task deadlines, retries, degradation); ``None`` uses
            :class:`SupervisorPolicy`'s defaults.
        backend: force a linear-algebra backend (``"scipy"``,
            ``"native"``, ``"pure"``) for every chain group instead of
            the cost-based per-group choice
            (:meth:`CostModel.best_backend`).  Like ``dispatch`` this
            changes *how*, never *what*: every backend agrees to
            1e-12, so it stays out of the service tier's fusion key.
        faults: a :class:`~repro.exec.faults.FaultInjector` threaded
            through execution for deterministic chaos testing
            (``None`` -- the production value -- costs one attribute
            check per hook site).
    """

    method: Optional[str] = None
    prefilter: Optional[bool] = None
    bfs_prune: Optional[bool] = None
    parallel: Optional[bool] = None
    dispatch: Optional[str] = None
    max_workers: Optional[int] = None
    allow_approximate: bool = False
    n_samples: int = 100
    seed: Optional[int] = None
    cost_model: Optional["CostModel"] = None
    auto_stream: bool = False
    supervisor: Optional[SupervisorPolicy] = None
    backend: Optional[str] = None
    faults: Optional[object] = None

    def __post_init__(self) -> None:
        if self.method is not None and self.method not in _ALL_METHODS:
            raise QueryError(
                f"unknown method {self.method!r}; expected one of "
                f"{_ALL_METHODS}"
            )
        if self.backend is not None:
            from repro.linalg.ops import available_backends

            if self.backend not in available_backends():
                raise ValidationError(
                    f"unknown backend {self.backend!r}; expected one "
                    f"of {available_backends()}"
                )
        _require_int("n_samples", self.n_samples, 1)
        if self.max_workers is not None:
            _require_int("max_workers", self.max_workers, 1)
        if self.supervisor is not None and not isinstance(
            self.supervisor, SupervisorPolicy
        ):
            raise ValidationError(
                f"supervisor must be a SupervisorPolicy, got "
                f"{self.supervisor!r}"
            )
        if self.dispatch is not None:
            if self.dispatch not in _DISPATCH_MODES:
                raise ValidationError(
                    f"unknown dispatch {self.dispatch!r}; expected one "
                    f"of {_DISPATCH_MODES}"
                )
            if self.parallel is not None and (
                self.parallel == (self.dispatch == "serial")
            ):
                raise QueryError(
                    f"dispatch={self.dispatch!r} conflicts with "
                    f"parallel={self.parallel!r}"
                )


@dataclass(frozen=True)
class CostModel:
    """Tunable coefficients of the planner's cost estimates.

    Costs are in abstract "operation" units; only *ratios* matter for
    the argmin.  The defaults reflect the batched kernels of
    :mod:`repro.core.batch`: a sparse backward step touches every chain
    non-zero once, the stacked OB sweep touches every non-zero once
    *per object column*, a QB answer costs one dense dot over the
    augmented state vector, and Monte-Carlo pays per sampled path step.

    Attributes:
        sweep_unit: cost per chain non-zero per timestep of one sparse
            vector pass (QB backward pass).
        dense_sweep_unit: cost per non-zero per timestep *per object*
            of the stacked OB forward sweep.
        dot_unit: cost per state per object of the final QB dots.
        build_unit: cost per non-zero of constructing augmented
            matrices (skipped on a plan-cache hit).
        mc_step_unit: cost per sample per timestep per object of the
            Monte-Carlo sampler.
        ktimes_unit: cost per chain non-zero per timestep per count
            column of the shared Section VII suffix-count recursion
            (:data:`~repro.exec.operators.KTIMES_CORE`); the pass is
            amortised over every object of the group, each of which
            then pays one dense ``(|S| x (|T_q|+1))`` dot priced by
            ``dot_unit``.
        object_overhead: fixed per-object bookkeeping cost (vector
            staging, Python dispatch).
        prefilter_min_objects: smallest database slice worth probing
            the R-tree for.
        prefilter_max_region_fraction: geometric pre-filtering is
            skipped when the query region covers more than this
            fraction of the state space (an almost-everywhere region
            prunes nothing and its MBR costs ``O(|region|)``).
        bfs_min_objects: smallest group worth the reverse-BFS labelling.
        parallel_min_objects: smallest total workload dispatched to the
            worker pool.
        max_workers_cap: upper bound on auto-sized worker pools.
        process_min_cost: smallest estimated evaluation cost (in the
            model's units) worth the process-pool dispatch of
            :mod:`repro.exec.dispatch` -- below it, fork/IPC overhead
            dominates any GIL win.
        shard_min_objects: smallest within-chain object shard handed to
            one process-pool worker.
        native_min_objects: smallest stacked cohort the structural
            (uncalibrated) heuristic promotes to the ``native``
            backend -- below it the sweeps are too small for the
            compiled kernels' setup (JIT dispatch or densify) to pay.
        native_min_density: smallest chain density
            (``nnz / n_states^2``) the structural heuristic promotes;
            very sparse chains are exactly where scipy's CSR products
            already win.
        backend_coefficients: per-backend calibrated coefficient sets
            (``{"scipy": {...}, "native": {...}}``) fitted by
            ``repro-bench calibrate``; when at least two backends are
            present, :meth:`best_backend` prices each group under each
            set and picks the measured argmin instead of the
            structural heuristic.
        calibrated_from: provenance note (calibration file path) when
            the coefficients came from :meth:`from_calibration`.
    """

    sweep_unit: float = 1.0
    dense_sweep_unit: float = 1.0
    dot_unit: float = 1.0
    build_unit: float = 4.0
    mc_step_unit: float = 8.0
    ktimes_unit: float = 1.0
    object_overhead: float = 200.0
    prefilter_min_objects: int = 8
    prefilter_max_region_fraction: float = 0.5
    bfs_min_objects: int = 4
    parallel_min_objects: int = 32
    max_workers_cap: int = 8
    process_min_cost: float = 5e8
    shard_min_objects: int = 128
    native_min_objects: int = 16
    native_min_density: float = 0.08
    backend_coefficients: Optional[Dict[str, Dict[str, float]]] = None
    calibrated_from: Optional[str] = None

    @staticmethod
    def calibration_path() -> str:
        """Where calibrated coefficients live on this machine.

        ``$REPRO_COSTMODEL_PATH`` when set, else
        ``~/.repro/costmodel.json`` (written by ``repro-bench
        calibrate``, see :mod:`repro.exec.calibrate`).
        """
        env = os.environ.get("REPRO_COSTMODEL_PATH")
        if env:
            return env
        return os.path.join(
            os.path.expanduser("~"), ".repro", "costmodel.json"
        )

    @classmethod
    def from_calibration(
        cls, path: Optional[str] = None, **overrides
    ) -> "CostModel":
        """A cost model with coefficients fitted on this hardware.

        Loads the JSON written by ``repro-bench calibrate``
        (:func:`repro.exec.calibrate.calibrate`): the kernel
        coefficients come from the least-squares fit, the structural
        thresholds keep their defaults unless overridden.

        Args:
            path: calibration file (default:
                :meth:`calibration_path`).
            **overrides: explicit field values that win over both.

        Raises:
            QueryError: when the file is missing or malformed (run
                ``repro-bench calibrate`` first).
        """
        import json

        path = path or cls.calibration_path()
        try:
            with open(path) as handle:
                document = json.load(handle)
            coefficients = document["coefficients"]
            # a coefficient a pre-existing calibration file does not
            # carry (e.g. ktimes_unit before its kernel was measured)
            # must not keep its structural default: fitted values are
            # seconds-per-unit-load, and mixing scales would inflate
            # that kernel's estimates by orders of magnitude.  Borrow
            # the fitted sparse-sweep scale instead -- same kind of
            # per-nnz-per-timestep load, so the argmin and the
            # process-dispatch threshold stay in one unit system.
            def _coefficient_set(source) -> Dict[str, float]:
                values = {
                    name: float(source[name])
                    for name in CALIBRATED_COEFFICIENTS
                    if name in source
                }
                if "ktimes_unit" not in values and "sweep_unit" in values:
                    values["ktimes_unit"] = values["sweep_unit"]
                return values

            fields = dict(_coefficient_set(coefficients))
            # per-backend coefficient sets (newer calibration files);
            # a single-backend file from before backend selection
            # loads as a scipy-only set, so best_backend() falls back
            # to the structural heuristic exactly as documented
            backends_doc = document.get("backends")
            if backends_doc:
                fields["backend_coefficients"] = {
                    str(name): _coefficient_set(
                        entry.get("coefficients", entry)
                    )
                    for name, entry in backends_doc.items()
                }
            else:
                fields["backend_coefficients"] = {"scipy": dict(fields)}
            # calibrated coefficients are seconds-per-unit-load, so
            # the process-dispatch threshold switches to the file's
            # wall-time bound (seconds past which a pool pays off)
            for name, value in document.get(
                "thresholds", {}
            ).items():
                if name in ("process_min_cost",):
                    fields[name] = float(value)
        except FileNotFoundError:
            raise QueryError(
                f"no calibration at {path}; run `repro-bench "
                f"calibrate` to measure this machine"
            ) from None
        except (
            KeyError, TypeError, ValueError, OSError, AttributeError
        ) as error:
            raise QueryError(
                f"unreadable calibration file {path}: {error}"
            ) from None
        fields["calibrated_from"] = path
        fields.update(overrides)
        return cls(**fields)

    #: seconds one default (uncalibrated) cost unit roughly buys --
    #: the default coefficients count "operations", and ~2 ns per
    #: operation is the right order of magnitude for the sparse
    #: kernels on any recent CPU.  Only used to price supervision
    #: deadlines, which carry a generous multiplier and floor anyway.
    DEFAULT_UNIT_SECONDS = 2e-9

    def predict_seconds(self, cost: float) -> float:
        """Estimated wall seconds of work costing ``cost`` model units.

        Calibrated coefficients (:meth:`from_calibration`) are
        seconds-per-unit-load, so the cost *is* seconds; the
        structural defaults are abstract operation counts and are
        converted at :data:`DEFAULT_UNIT_SECONDS`.  The supervised
        dispatch layer prices per-task deadlines from this.
        """
        if self.calibrated_from is not None:
            return float(cost)
        return float(cost) * self.DEFAULT_UNIT_SECONDS

    def qb_cost(self, features: "GroupFeatures") -> float:
        """One shared backward pass (unless cached) + one dot/object."""
        build = 0.0 if features.absorbing_cached else (
            self.build_unit * features.nnz
        )
        sweep = (
            (1.0 - features.backward_cached_fraction)
            * features.horizon * features.nnz * self.sweep_unit
        )
        answers = features.n_single * (
            features.n_states * self.dot_unit + self.object_overhead
        )
        return build + sweep + answers

    def ob_cost(self, features: "GroupFeatures") -> float:
        """One stacked forward sweep dragging every object column."""
        build = 0.0 if features.absorbing_cached else (
            self.build_unit * features.nnz
        )
        sweep = (
            features.horizon * features.nnz * self.dense_sweep_unit
            * max(1, features.n_single)
        )
        return build + sweep + features.n_single * self.object_overhead

    def mc_cost(self, features: "GroupFeatures", n_samples: int) -> float:
        """Path sampling: every object pays per sample per step."""
        return features.n_single * (
            n_samples * max(1, features.horizon) * self.mc_step_unit
            + self.object_overhead
        )

    def ktimes_cost(self, features: "GroupFeatures") -> float:
        """One shared suffix-count pass + one count-block dot/object."""
        rows = features.duration + 1
        core = (
            features.horizon * features.nnz * self.ktimes_unit * rows
        )
        answers = features.n_single * (
            features.n_states * rows * self.dot_unit
            + self.object_overhead
        )
        return core + answers

    def multi_cost(self, features: "GroupFeatures") -> float:
        """Section VI doubled-space sweep (informational: no choice)."""
        build = 0.0 if features.doubled_cached else (
            2.0 * self.build_unit * features.nnz
        )
        return build + (
            features.horizon * 2.0 * features.nnz
            * self.dense_sweep_unit * max(1, features.n_multi)
        )

    # ------------------------------------------------------------------
    # backend selection
    # ------------------------------------------------------------------
    def method_cost(
        self,
        features: "GroupFeatures",
        method: str,
        n_samples: int = 100,
    ) -> float:
        """The group's estimated cost under ``method``."""
        if method == "qb":
            return self.qb_cost(features)
        if method == "ob":
            return self.ob_cost(features)
        if method == "ct":
            return self.ktimes_cost(features)
        if method == "mc":
            return self.mc_cost(features, n_samples)
        raise QueryError(f"unknown method {method!r}")

    def for_backend(self, name: str) -> "CostModel":
        """This model with ``name``'s calibrated coefficients swapped in.

        Identity when no per-backend set was calibrated for ``name`` --
        the shared coefficients then price every backend the same and
        the structural heuristic decides.
        """
        sets = self.backend_coefficients or {}
        if name not in sets:
            return self
        return replace(self, **sets[name])

    def best_backend(
        self,
        features: "GroupFeatures",
        method: str,
        n_samples: int = 100,
    ) -> str:
        """The backend this group's kernels should execute through.

        With calibrated per-backend coefficient sets (two or more
        backends measured) the choice is the measured argmin of the
        group's method cost, scipy winning ties.  Otherwise a
        structural heuristic promotes dense stacked cohorts (the
        shapes where the compiled/dense kernels were measured to win)
        to ``native`` and keeps everything else on scipy.
        """
        from repro.linalg.ops import available_backends

        installed = available_backends()
        if "native" not in installed or "scipy" not in installed:
            return "scipy" if "scipy" in installed else "pure"
        sets = self.backend_coefficients or {}
        comparable = [
            name for name in sorted(sets) if name in installed
        ]
        if len(comparable) >= 2:
            def price(name: str) -> float:
                return self.for_backend(name).method_cost(
                    features, method, n_samples
                )

            scipy_cost = price("scipy") if "scipy" in comparable else None
            best = min(comparable, key=price)
            if (
                scipy_cost is not None
                and price(best) >= scipy_cost * 0.999
            ):
                return "scipy"  # ties (and noise-level wins) stay put
            return best
        # structural heuristic: the compiled kernels win on dense
        # chains sweeping many stacked columns; tiny or very sparse
        # groups stay on scipy (measured crossover, see
        # benchmarks/benchmark_backends.py)
        from repro.linalg import native as native_kernels

        density = features.nnz / max(1, features.n_states) ** 2
        dense_elements = features.n_states ** 2
        if (
            method in ("ob", "ct")
            and features.n_single >= self.native_min_objects
            and density >= self.native_min_density
            and dense_elements <= native_kernels.dense_cap()
        ):
            return "native"
        return "scipy"


@dataclass(frozen=True)
class GroupFeatures:
    """The per-chain-group quantities the cost model consumes.

    Attributes:
        n_single: single-observation objects in the group.
        n_multi: multi-observation (Section VI) objects in the group.
        n_states: augmented state-vector length (``|S| + 1``).
        nnz: chain transition non-zeros (sparsity).
        horizon: ``t_end`` minus the group's earliest observation time.
        duration: ``|T_q]`` timestamps in the window.
        absorbing_cached: Section V-A matrices already in the plan cache.
        doubled_cached: Section VI matrices already in the plan cache.
        backward_cached_fraction: fraction of the group's distinct start
            times whose Section V-B backward vector is already cached.
    """

    n_single: int
    n_multi: int
    n_states: int
    nnz: int
    horizon: int
    duration: int
    absorbing_cached: bool = False
    doubled_cached: bool = False
    backward_cached_fraction: float = 0.0


@dataclass
class GroupPlan:
    """Planned execution of one chain group.

    Attributes:
        chain_id: the group's chain.
        method: chosen processing method for single-observation objects
            (``"qb"``/``"ob"``/``"mc"``; k-times queries use the exact
            ``C(t)`` algorithm and record ``"ct"``).
        objects: the group's objects (filter stages narrow this set at
            execution time without mutating the plan).
        features: the cost-model inputs.
        costs: estimated cost per candidate method.
        backend: linear-algebra backend the group's kernels execute
            through (:meth:`CostModel.best_backend`, or the forced
            :attr:`PlanOptions.backend`).  The pipeline rewrites it to
            ``"scipy"`` if the native kernels fail at runtime, with
            the fall recorded on ``plan.degradations``.
        predicted_seconds: the cost model's wall-time prediction for
            the chosen method; ``describe()`` renders it next to the
            measured ``elapsed_seconds``.
        survivors: objects left after the filter stages (execution).
        elapsed_seconds: group kernel time (execution); under process
            dispatch, the summed worker-side shard seconds plus any
            parent-side multi/MC kernel time.
        shard_count: for a sharded store, the number of non-empty
            store shards holding this chain's objects -- the
            cardinality the dispatch decision scatters over (``None``
            for in-RAM databases).
    """

    chain_id: str
    method: str
    objects: List[UncertainObject] = field(repr=False, default_factory=list)
    features: Optional[GroupFeatures] = None
    costs: Dict[str, float] = field(default_factory=dict)
    backend: Optional[str] = None
    predicted_seconds: Optional[float] = None
    survivors: Optional[int] = None
    elapsed_seconds: Optional[float] = None
    shard_count: Optional[int] = None

    @property
    def object_ids(self) -> List[str]:
        """Ids of the group's objects."""
        return [obj.object_id for obj in self.objects]


@dataclass
class StageStats:
    """One executed pipeline stage, EXPLAIN-style.

    Attributes:
        name: ``"prefilter"``, ``"bfs"`` or ``"evaluate"`` for batch
            plans; standing-query ticks
            (:mod:`repro.core.streaming`) report a ``"streaming"``
            stage instead, whose detail carries the tick number, the
            per-tick candidate delta, and the sparse products spent.
        candidates_in: objects entering the stage.
        candidates_out: objects surviving the stage.
        elapsed_seconds: wall-clock stage time.
        detail: free-form annotation (e.g. R-tree nodes visited).
    """

    name: str
    candidates_in: int
    candidates_out: int
    elapsed_seconds: float = 0.0
    detail: str = ""


@dataclass
class QueryPlan:
    """A planned (and, after execution, measured) query evaluation.

    Attributes:
        kind: the *executed* evaluation kind -- ``"exists"`` or
            ``"ktimes"`` (for-all queries plan the complement
            exists-evaluation, flagged by ``complemented``).
        semantics: the *originating* query semantics -- ``"exists"``,
            ``"forall"`` or ``"ktimes"``.  A for-all query executes as
            its complement exists-evaluation, so ``kind`` alone would
            misattribute what the user asked for in ``explain()``
            output and ``operator_seconds`` roll-ups; this field
            carries the truth (defaults to ``kind`` when unset).
        window: the window the pipeline actually evaluates.
        requested_method: what the caller asked for (``"auto"`` or a
            forced method).
        complemented: the window is the for-all complement reduction.
        use_prefilter: run the R-tree geometric filter stage.
        use_bfs: run the exact BFS reachability filter stage.
        parallel: dispatch work across a worker pool (equivalent to
            ``dispatch != "serial"``; kept for compatibility).
        max_workers: pool size when ``parallel``.
        options: the resolved :class:`PlanOptions`.
        groups: one :class:`GroupPlan` per chain group.
        stages: filled by the pipeline with per-stage candidate counts
            and timings.
        dispatch: chosen execution mode -- ``"serial"``, ``"thread"``
            or ``"process"`` (shared-memory process pool,
            :mod:`repro.exec.dispatch`).
        operator_seconds: per-operator ``(calls, seconds)`` timings
            collected by the execution layer's hooks
            (:class:`~repro.exec.operators.ExecutionContext`),
            including timings merged back from worker processes.
        cost_model: the model the planner resolved (per-query
            override or engine default) -- the pipeline reads its
            execution knobs (e.g. ``shard_min_objects``) from here so
            planning and execution never disagree.
        auto_streamed: this plan was executed by a standing query a
            :attr:`PlanOptions.auto_stream` evaluation transparently
            delegated to.
        degradations: recovery events of this execution -- supervisor
            retries ("pool rebuilt after worker crash ..."), and tier
            falls ("process -> thread: ...").  Empty on a clean run;
            rendered by :meth:`describe` so ``explain()`` shows how
            the exact answer was actually obtained.
        fusion: cross-request fusion events recorded by the
            :mod:`repro.service` request broker when this evaluation
            answered several concurrent requests at once ("fused 5
            requests from 2 tenants ...", plus the admission prices
            of the request the plan was returned to).  Empty for
            plain library evaluations; rendered by :meth:`describe`
            so ``explain()`` shows what was merged and why.
        store_stats: aggregate statistics of a store-scatter
            execution (shard count, shard-local filter prunes, fresh
            slab attaches, shard -> parent fallbacks); ``None`` unless
            the query ran against a sharded store through the
            zero-copy shard workers.
    """

    kind: str
    window: SpatioTemporalWindow
    requested_method: str
    complemented: bool
    use_prefilter: bool
    use_bfs: bool
    parallel: bool
    max_workers: int
    options: PlanOptions
    groups: List[GroupPlan] = field(default_factory=list)
    stages: List[StageStats] = field(default_factory=list)
    dispatch: str = "serial"
    operator_seconds: Dict[str, object] = field(default_factory=dict)
    cost_model: Optional[CostModel] = field(
        default=None, repr=False
    )
    semantics: Optional[str] = None
    auto_streamed: bool = False
    degradations: List[str] = field(default_factory=list)
    fusion: List[str] = field(default_factory=list)
    store_stats: Optional[Dict[str, int]] = None

    def __post_init__(self) -> None:
        if self.semantics is None:
            self.semantics = self.kind

    @property
    def n_objects(self) -> int:
        """Total candidate objects entering the pipeline."""
        return sum(len(group.objects) for group in self.groups)

    @property
    def estimated_cost(self) -> float:
        """Planned cost: the sum of each group's cheapest method.

        In the cost model's units (abstract operations for the default
        coefficients, seconds for calibrated ones); feed it through
        :meth:`CostModel.predict_seconds` for a wall-time prediction.
        This is the quantity the service tier's admission control
        prices requests with.
        """
        return sum(
            min(group.costs.values())
            for group in self.groups
            if group.costs
        )

    def estimated_seconds(self) -> float:
        """Predicted wall seconds of executing this plan.

        Uses the plan's resolved cost model
        (:meth:`CostModel.predict_seconds`); falls back to default
        coefficients when the planner attached none.
        """
        model = self.cost_model or CostModel()
        return model.predict_seconds(self.estimated_cost)

    def stage_counts(self) -> List[int]:
        """Candidate counts through the pipeline: ``[in, out, out, ...]``.

        Monotonically non-increasing by construction -- filter stages
        only ever remove candidates (asserted in the test suite).
        """
        if not self.stages:
            return [self.n_objects]
        return [self.stages[0].candidates_in] + [
            stage.candidates_out for stage in self.stages
        ]

    def describe(self) -> str:
        """A human-readable EXPLAIN rendering of the plan."""
        region = self.window.region
        lines = [
            f"QueryPlan(kind={self.kind}"
            + (
                f", semantics={self.semantics}"
                if self.semantics not in (None, self.kind)
                else ""
            )
            + (", complemented" if self.complemented else "")
            + (", auto-streamed" if self.auto_streamed else "")
            + f", method={self.requested_method}, "
            f"region |S_q|={len(region)}, "
            f"T_q=[{self.window.t_start},{self.window.t_end}])",
            f"  stages: prefilter={'on' if self.use_prefilter else 'off'}"
            f" -> bfs={'on' if self.use_bfs else 'off'}"
            f" -> evaluate("
            + (
                f"{self.dispatch} x{self.max_workers}"
                if self.parallel
                else "serial"
            )
            + ")",
        ]
        for group in self.groups:
            costs = ", ".join(
                f"{name}={cost:.3g}"
                for name, cost in sorted(group.costs.items())
            )
            singles = group.features.n_single if group.features else "?"
            multis = group.features.n_multi if group.features else "?"
            line = (
                f"  group {group.chain_id!r}: {singles} single + "
                f"{multis} multi -> method={group.method}"
            )
            if group.backend is not None:
                line += f" backend={group.backend}"
            if costs:
                line += f"  [{costs}]"
            if group.predicted_seconds is not None:
                line += (
                    f"  predicted={group.predicted_seconds * 1e3:.3f} ms"
                )
                if group.elapsed_seconds is not None:
                    line += (
                        f" measured={group.elapsed_seconds * 1e3:.3f} ms"
                    )
            if group.survivors is not None:
                line += f"  survivors={group.survivors}"
            lines.append(line)
        for stage in self.stages:
            lines.append(
                f"  {stage.name:<9}: {stage.candidates_in:>6} -> "
                f"{stage.candidates_out:<6} "
                f"({stage.elapsed_seconds * 1e3:8.3f} ms"
                + (f", {stage.detail}" if stage.detail else "")
                + ")"
            )
        if self.store_stats:
            stats = self.store_stats
            lines.append(
                "  store    : "
                f"{stats.get('shards', 0)} shard(s), "
                f"{stats.get('entering', 0)} entering, "
                f"prefilter -{stats.get('prefilter_pruned', 0)}, "
                f"bfs -{stats.get('bfs_pruned', 0)}, "
                f"{stats.get('fresh_attaches', 0)} fresh attach(es), "
                f"{stats.get('parent_fallbacks', 0)} parent fallback(s)"
            )
        for event in self.degradations:
            lines.append(f"  degraded : {event}")
        for event in self.fusion:
            lines.append(f"  fused    : {event}")
        if self.operator_seconds:
            parts = []
            for name, stats in sorted(self.operator_seconds.items()):
                calls = getattr(stats, "calls", None)
                seconds = getattr(stats, "seconds", None)
                if calls is None:  # (calls, seconds) tuple form
                    calls, seconds = stats
                parts.append(
                    f"{name} x{calls} {seconds * 1e3:.3f} ms"
                )
            lines.append("  operators: " + " | ".join(parts))
        return "\n".join(lines)


class QueryPlanner:
    """Builds cost-based :class:`QueryPlan` objects for a database.

    Args:
        database: the database queries run against.
        plan_cache: the engine's plan cache, probed (without mutating
            its statistics) to credit cached constructions.
        backend: linear-algebra backend name (cache-key component).
        cost_model: default coefficients; per-query overrides come via
            :attr:`PlanOptions.cost_model`.
    """

    def __init__(
        self,
        database,
        plan_cache=None,
        backend: Optional[str] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.database = database
        self.plan_cache = plan_cache
        self.backend = backend
        self.cost_model = cost_model or CostModel()

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def plan(
        self, query: PSTQuery, options: Optional[PlanOptions] = None
    ) -> QueryPlan:
        """Plan one query's execution.

        For-all queries are planned through the paper's Section VII
        complement reduction; the pipeline evaluates the complement
        exists-query and the engine applies ``1 - p``.
        """
        options = options or PlanOptions()
        if isinstance(query, PSTForAllQuery):
            complement = (
                frozenset(range(self.database.n_states)) - query.region
            )
            if not complement:
                raise QueryError(
                    "for-all region covers the whole space; the "
                    "probability is trivially 1 and there is nothing "
                    "to plan"
                )
            return self.plan_window(
                query.window.with_region(complement),
                kind="exists",
                complemented=True,
                options=options,
                semantics="forall",
            )
        if isinstance(query, PSTKTimesQuery):
            return self.plan_window(
                query.window, kind="ktimes", options=options
            )
        if isinstance(query, PSTExistsQuery):
            return self.plan_window(
                query.window, kind="exists", options=options
            )
        raise QueryError(f"unsupported query type {type(query)!r}")

    def estimate_seconds(
        self, query: PSTQuery, options: Optional[PlanOptions] = None
    ) -> float:
        """Predicted wall seconds of evaluating ``query`` -- no kernels.

        The admission-control hook of the service tier
        (:mod:`repro.service`): planning probes only object counts,
        chain sparsity and the plan cache, so the price of a request
        can be quoted *before* any kernel work is committed.  With a
        calibrated cost model
        (:meth:`CostModel.from_calibration`) the returned value is a
        genuine wall-time prediction; with the structural defaults it
        is an operation count converted at
        :data:`CostModel.DEFAULT_UNIT_SECONDS` -- coarse, but
        consistent across requests, which is all ordering and
        budgeting need.
        """
        if isinstance(query, PSTForAllQuery) and not (
            frozenset(range(self.database.n_states)) - query.region
        ):
            # trivially 1.0 for every object; evaluate() never plans it
            return 0.0
        return self.plan(query, options).estimated_seconds()

    def plan_window(
        self,
        window: SpatioTemporalWindow,
        kind: str = "exists",
        complemented: bool = False,
        options: Optional[PlanOptions] = None,
        semantics: Optional[str] = None,
    ) -> QueryPlan:
        """Plan an evaluation over an explicit window.

        Used directly by the engine's for-all path, which has already
        reduced the query to its complement window (Section VII).
        """
        options = options or PlanOptions()
        model = options.cost_model or self.cost_model
        groups: List[GroupPlan] = []
        total_objects = 0
        for chain_id, objects in sorted(
            self.database.objects_by_chain().items()
        ):
            total_objects += len(objects)
            groups.append(
                self._plan_group(
                    chain_id, objects, window, kind, options, model
                )
            )

        use_prefilter = self._decide_prefilter(
            window, total_objects, options, model
        )
        use_bfs = (
            options.bfs_prune
            if options.bfs_prune is not None
            else total_objects >= model.bfs_min_objects
        )
        dispatch, max_workers = self._decide_dispatch(
            groups, total_objects, options, model, kind
        )
        requested = options.method or "auto"
        return QueryPlan(
            kind=kind,
            window=window,
            requested_method=requested,
            complemented=complemented,
            use_prefilter=use_prefilter,
            use_bfs=use_bfs,
            parallel=dispatch != "serial",
            max_workers=max_workers,
            options=options,
            groups=groups,
            dispatch=dispatch,
            cost_model=model,
            semantics=semantics or kind,
        )

    def _plan_group(
        self,
        chain_id: str,
        objects: Sequence[UncertainObject],
        window: SpatioTemporalWindow,
        kind: str,
        options: PlanOptions,
        model: CostModel,
    ) -> GroupPlan:
        chain = self.database.chain(chain_id)
        singles = [
            obj for obj in objects
            if not obj.has_multiple_observations()
        ]
        multis = [
            obj for obj in objects if obj.has_multiple_observations()
        ]
        starts = sorted({obj.initial.time for obj in objects})
        horizon = max(0, window.t_end - (starts[0] if starts else 0))
        features = GroupFeatures(
            n_single=len(singles),
            n_multi=len(multis),
            n_states=chain.n_states + 1,
            nnz=chain.nnz,
            horizon=horizon,
            duration=window.duration,
            absorbing_cached=self._cached("absorbing", chain, window),
            doubled_cached=self._cached("doubled", chain, window),
            backward_cached_fraction=self._backward_fraction(
                chain, window, starts
            ),
        )
        costs: Dict[str, float] = {}
        if kind == "ktimes":
            # the exact stacked C(t) sweep serves both QB and OB; only
            # a forced "mc" changes the kernel.  The ct estimate still
            # matters: it is what the dispatch decision prices.
            costs = {"ct": model.ktimes_cost(features)}
            if options.method == "mc" or options.allow_approximate:
                costs["mc"] = model.mc_cost(features, options.n_samples)
            method = options.method or "ct"
        else:
            costs = {
                "qb": model.qb_cost(features),
                "ob": model.ob_cost(features),
            }
            if options.allow_approximate or options.method == "mc":
                costs["mc"] = model.mc_cost(features, options.n_samples)
            if features.n_multi:
                costs["multi"] = model.multi_cost(features)
            if options.method is not None:
                method = options.method
            else:
                candidates = (
                    _ALL_METHODS
                    if options.allow_approximate
                    else _EXACT_METHODS
                )
                method = min(
                    candidates, key=lambda name: costs.get(name, float("inf"))
                )
        if options.backend is not None:
            backend = options.backend
        elif self.backend not in (None, "scipy"):
            # an engine pinned to a non-default backend (e.g. the
            # pure-python cross-check) keeps it for every group
            backend = self.backend
        else:
            backend = model.best_backend(
                features, method, options.n_samples
            )
        shard_count = None
        store_shards = getattr(self.database, "store_shards", None)
        if callable(store_shards):
            # per-shard cardinalities: the dispatch decision scatters
            # over store shards, not over a within-chain row split
            shard_count = sum(
                1
                for entry in store_shards(chain_id)
                if entry.get("n_objects")
            )
        return GroupPlan(
            chain_id=chain_id,
            method=method,
            objects=list(objects),
            features=features,
            costs=costs,
            backend=backend,
            predicted_seconds=model.predict_seconds(
                costs.get(method, 0.0)
            ),
            shard_count=shard_count,
        )

    def _cached(self, kind: str, chain, window) -> bool:
        if self.plan_cache is None:
            return False
        return self.plan_cache.contains(
            kind, chain, window.region, self.backend
        )

    def _backward_fraction(
        self, chain, window, starts: Sequence[int]
    ) -> float:
        if self.plan_cache is None or not starts:
            return 0.0
        cached = sum(
            1
            for start in starts
            if self.plan_cache.contains(
                "backward",
                chain,
                window.region,
                self.backend,
                (window.times, start),
            )
        )
        return cached / len(starts)

    def _decide_prefilter(
        self,
        window: SpatioTemporalWindow,
        total_objects: int,
        options: PlanOptions,
        model: CostModel,
    ) -> bool:
        if options.prefilter is not None:
            return options.prefilter
        if self.database.state_positions() is None:
            return False
        if total_objects < model.prefilter_min_objects:
            return False
        fraction = len(window.region) / max(1, self.database.n_states)
        return fraction <= model.prefilter_max_region_fraction

    def _decide_dispatch(
        self,
        groups: Sequence[GroupPlan],
        total_objects: int,
        options: PlanOptions,
        model: CostModel,
        kind: str,
    ):
        """Choose serial / thread / process execution and a pool size.

        Threads only help when *independent chain groups* exist (the
        batched kernels hold the GIL for one group's products);
        processes shard within a chain too, so they are the only mode
        that scales a single-chain sweep -- but each shard pays
        fork/IPC overhead, so the estimated kernel cost must clear
        ``process_min_cost`` before auto picks them.  Both the stacked
        exists sweeps (OB) and the stacked k-times sweep (CT) shard
        within a chain; QB's shared backward pass runs as one task.
        """
        cores = os.cpu_count() or 1

        def workers_for(mode: str) -> int:
            cap = options.max_workers or min(
                model.max_workers_cap, cores
            )
            if mode == "thread":
                return max(1, min(cap, len(groups)))
            shards = max(
                len(groups),
                total_objects // max(1, model.shard_min_objects),
                sum(group.shard_count or 0 for group in groups),
            )
            return max(1, min(cap, shards))

        if options.dispatch is not None:
            mode = options.dispatch
            if mode == "serial":
                return "serial", 1
            return mode, workers_for(mode)

        thread_auto = (
            len(groups) >= 2
            and total_objects >= model.parallel_min_objects
        )
        if options.parallel is True:
            # legacy toggle: thread dispatch, needing >= 2 groups
            if len(groups) < 2:
                return "serial", 1
            return "thread", workers_for("thread")
        if options.parallel is False:
            return "serial", 1

        if cores >= 2:
            estimated = sum(
                min(group.costs.values())
                for group in groups
                if group.costs
            )
            # only stacked-sweep groups (OB exists, CT k-times) shard
            # within a chain (QB's shared backward pass runs as one
            # task), so a lone QB group gains nothing from a pool --
            # don't pay fork for it
            shardable = any(
                group.method in ("ob", "ct")
                and group.features is not None
                and group.features.n_single >= 2 * model.shard_min_objects
                for group in groups
            ) or any(
                # a sharded store scatters every method (qb/mc/multi
                # included) shard-locally over its slabs
                (group.shard_count or 0) > 1
                for group in groups
            )
            if (
                estimated >= model.process_min_cost
                and (shardable or len(groups) >= 2)
                and workers_for("process") > 1
            ):
                return "process", workers_for("process")
        if thread_auto:
            workers = workers_for("thread")
            if workers > 1:
                return "thread", workers
        return "serial", 1


def resolve_options(
    base: Optional[PlanOptions],
    method: str,
    n_samples: Optional[int],
    seed: Optional[int],
    prune: Optional[bool],
) -> PlanOptions:
    """Merge the engine's keyword arguments into plan options.

    ``method="auto"`` leaves the cost-based choice in place; a concrete
    method forces it (conflicting forcings raise).  The deprecated
    ``prune`` flag maps onto the two filter toggles (``True`` enables
    the BFS filter, ``False`` disables both) -- explicit fields on
    ``base`` win over the legacy flag.
    """
    options = base or PlanOptions()
    updates = {}
    if method != "auto":
        if options.method is not None and options.method != method:
            raise QueryError(
                f"method={method!r} conflicts with "
                f"options.method={options.method!r}"
            )
        updates["method"] = method
    if n_samples is not None:
        updates["n_samples"] = n_samples
    if seed is not None:
        updates["seed"] = seed
    if prune is not None:
        if options.bfs_prune is None:
            updates["bfs_prune"] = prune
        if options.prefilter is None and not prune:
            updates["prefilter"] = False
    return replace(options, **updates) if updates else options
