"""Occupancy forecasting -- the paper's future-work analysis (Section IX).

The conclusion sketches "data analysis tasks over spatio-temporal data
(e.g. find areas that are expected to become congested together with the
time periods of this expectation)".  With the Markov model this is a small
extension: the *expected occupancy* of state ``s`` at time ``t`` is the
sum over objects of their marginal probability of being at ``s``,

    E[#objects at s at t] = sum_o P(o(t) = s),

and a congestion report lists the ``(state, time)`` pairs whose expected
occupancy crosses a threshold.  One forward sweep per chain suffices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from repro.core.distribution import StateDistribution
from repro.core.errors import ValidationError
from repro.core.markov import MarkovChain

__all__ = [
    "expected_occupancy",
    "CongestionEvent",
    "congestion_report",
]


def expected_occupancy(
    chain: MarkovChain,
    initials: Sequence[StateDistribution],
    horizon: int,
) -> np.ndarray:
    """Expected object count per state per time.

    Args:
        chain: the shared Markov model.
        initials: one distribution per object (their states at time 0).
        horizon: forecast up to and including this timestamp.

    Returns:
        Array of shape ``(horizon + 1, n_states)``; entry ``[t, s]`` is the
        expected number of objects at state ``s`` at time ``t``.
    """
    if horizon < 0:
        raise ValidationError(f"horizon must be non-negative, got {horizon}")
    if not initials:
        raise ValidationError("need at least one object")
    n = chain.n_states
    total = np.zeros(n, dtype=float)
    for initial in initials:
        if initial.n_states != n:
            raise ValidationError(
                f"object distribution over {initial.n_states} states, "
                f"chain over {n}"
            )
        total += initial.vector
    occupancy = np.empty((horizon + 1, n), dtype=float)
    occupancy[0] = total
    vector = total
    for time in range(1, horizon + 1):
        vector = np.asarray(vector @ chain.matrix, dtype=float)
        occupancy[time] = vector
    return occupancy


@dataclass(frozen=True)
class CongestionEvent:
    """A state-time pair whose expected occupancy crosses the threshold.

    Attributes:
        state: the congested state.
        time: the timestamp of the congestion.
        expected_count: the forecast expected number of objects.
    """

    state: int
    time: int
    expected_count: float


def congestion_report(
    chain: MarkovChain,
    initials: Sequence[StateDistribution],
    horizon: int,
    threshold: float,
    states_of_interest: Iterable[int] = (),
) -> List[CongestionEvent]:
    """Find ``(state, time)`` pairs expected to exceed ``threshold`` objects.

    Args:
        chain: the shared Markov model.
        initials: per-object distributions at time 0.
        horizon: last forecast timestamp.
        threshold: minimum expected count to report.
        states_of_interest: restrict the report to these states (all when
            empty).

    Returns:
        Events sorted by decreasing expected count, ties by time then state.
    """
    if threshold < 0:
        raise ValidationError(
            f"threshold must be non-negative, got {threshold}"
        )
    occupancy = expected_occupancy(chain, initials, horizon)
    if states_of_interest:
        columns = sorted(set(int(s) for s in states_of_interest))
        for state in columns:
            if not (0 <= state < chain.n_states):
                raise ValidationError(
                    f"state {state} out of range [0, {chain.n_states})"
                )
    else:
        columns = list(range(chain.n_states))
    events: List[CongestionEvent] = []
    selected = occupancy[:, columns]
    times, column_positions = np.nonzero(selected >= threshold)
    for time, position in zip(times, column_positions):
        state = columns[int(position)]
        events.append(
            CongestionEvent(
                state=state,
                time=int(time),
                expected_count=float(occupancy[int(time), state]),
            )
        )
    events.sort(key=lambda e: (-e.expected_count, e.time, e.state))
    return events
