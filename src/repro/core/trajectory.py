"""Trajectories and exact possible-world enumeration.

A *certain* trajectory is a function ``o : T -> S`` (Section III).  An
uncertain trajectory is the stochastic process induced by a Markov chain
and an initial distribution (Definition 1); each realisation (a concrete
path) is one *possible world* (Figure 3).

Besides the :class:`Trajectory` value type, this module provides
:class:`PossibleWorldEnumerator`, which exhaustively enumerates every
possible world of a small chain together with its probability.  The
enumeration is exponential (``O(|S|^T)``, exactly the blow-up the paper's
matrix technique avoids) and exists purely as the *ground-truth oracle*
for the test suite: every query processor is checked against it on small
random instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.core.distribution import StateDistribution
from repro.core.errors import ValidationError
from repro.core.markov import MarkovChain
from repro.core.query import SpatioTemporalWindow

__all__ = [
    "Trajectory",
    "sample_trajectory",
    "PossibleWorldEnumerator",
]


@dataclass(frozen=True)
class Trajectory:
    """A certain trajectory: the state of an object at ``t = 0, 1, ...``.

    Attributes:
        states: ``states[t]`` is the object's state at time ``t`` (the
            trajectory starts at time zero).
    """

    states: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.states:
            raise ValidationError("a trajectory needs at least one state")
        object.__setattr__(
            self, "states", tuple(int(s) for s in self.states)
        )

    def __len__(self) -> int:
        return len(self.states)

    def __getitem__(self, time: int) -> int:
        return self.states[time]

    def state_at(self, time: int) -> int:
        """State occupied at ``time`` (must be within the horizon)."""
        if not (0 <= time < len(self.states)):
            raise ValidationError(
                f"time {time} outside trajectory horizon "
                f"[0, {len(self.states)})"
            )
        return self.states[time]

    # ------------------------------------------------------------------
    # query predicates on a single (certain) trajectory
    # ------------------------------------------------------------------
    def intersects(self, window: SpatioTemporalWindow) -> bool:
        """Exists-semantics: inside the region at some query time."""
        return any(
            t < len(self.states) and self.states[t] in window.region
            for t in window.times
        )

    def stays_within(self, window: SpatioTemporalWindow) -> bool:
        """For-all semantics: inside the region at every query time."""
        return all(
            t < len(self.states) and self.states[t] in window.region
            for t in window.times
        )

    def hit_count(self, window: SpatioTemporalWindow) -> int:
        """Number of query timestamps spent inside the region."""
        return sum(
            1
            for t in window.times
            if t < len(self.states) and self.states[t] in window.region
        )

    def probability_under(
        self, chain: MarkovChain, initial: StateDistribution
    ) -> float:
        """Probability of this exact path under (chain, initial)."""
        probability = initial.probability(self.states[0])
        for source, target in zip(self.states, self.states[1:]):
            if probability == 0.0:
                return 0.0
            probability *= chain.transition_probability(source, target)
        return probability


def sample_trajectory(
    chain: MarkovChain,
    initial: StateDistribution,
    horizon: int,
    rng: np.random.Generator,
) -> Trajectory:
    """Draw one possible world of length ``horizon + 1``.

    This is the paper's Monte-Carlo path sampler: draw a start state from
    the object's distribution, then draw each successor from the current
    state's transition row.
    """
    if horizon < 0:
        raise ValidationError(f"horizon must be non-negative, got {horizon}")
    matrix = chain.matrix
    state = initial.sample(rng)
    states = [state]
    for _ in range(horizon):
        lo, hi = matrix.indptr[state], matrix.indptr[state + 1]
        targets = matrix.indices[lo:hi]
        weights = matrix.data[lo:hi]
        # guard against tiny float drift in the row sum
        weights = weights / weights.sum()
        state = int(rng.choice(targets, p=weights))
        states.append(state)
    return Trajectory(tuple(states))


class PossibleWorldEnumerator:
    """Exhaustive enumeration of possible worlds (test oracle only).

    Args:
        chain: the Markov model.
        initial: the distribution at time zero.
        horizon: the last timestamp to instantiate; every enumerated world
            has ``horizon + 1`` states.

    Raises:
        ValidationError: when the enumeration would exceed ``max_worlds``
            (a guard against accidental exponential blow-up in tests).
    """

    def __init__(
        self,
        chain: MarkovChain,
        initial: StateDistribution,
        horizon: int,
        max_worlds: int = 2_000_000,
    ) -> None:
        if horizon < 0:
            raise ValidationError(
                f"horizon must be non-negative, got {horizon}"
            )
        self.chain = chain
        self.initial = initial
        self.horizon = horizon
        self.max_worlds = max_worlds

    def worlds(self) -> Iterator[Tuple[Trajectory, float]]:
        """Yield every possible world with its probability (DFS order)."""
        count = 0
        stack: List[Tuple[List[int], float]] = []
        for state, probability in self.initial.items():
            stack.append(([state], probability))
        while stack:
            path, probability = stack.pop()
            if len(path) == self.horizon + 1:
                count += 1
                if count > self.max_worlds:
                    raise ValidationError(
                        f"possible-world enumeration exceeded "
                        f"{self.max_worlds} worlds"
                    )
                yield Trajectory(tuple(path)), probability
                continue
            state = path[-1]
            for successor in self.chain.successors(state):
                step = self.chain.transition_probability(state, successor)
                if step > 0.0:
                    stack.append((path + [successor], probability * step))

    # ------------------------------------------------------------------
    # exact query answers by brute force
    # ------------------------------------------------------------------
    def probability_that(
        self, predicate: Callable[[Trajectory], bool]
    ) -> float:
        """Total probability of worlds satisfying ``predicate``."""
        return sum(
            probability
            for trajectory, probability in self.worlds()
            if predicate(trajectory)
        )

    def exists_probability(self, window: SpatioTemporalWindow) -> float:
        """Ground-truth PST-exists probability."""
        return self.probability_that(lambda w: w.intersects(window))

    def forall_probability(self, window: SpatioTemporalWindow) -> float:
        """Ground-truth PST-for-all probability."""
        return self.probability_that(lambda w: w.stays_within(window))

    def ktimes_distribution(
        self, window: SpatioTemporalWindow
    ) -> np.ndarray:
        """Ground-truth distribution over hit counts ``k = 0 .. |T_q|``."""
        counts = np.zeros(window.duration + 1, dtype=float)
        for trajectory, probability in self.worlds():
            counts[trajectory.hit_count(window)] += probability
        return counts

    def conditioned_on_observations(
        self, observations: Sequence[Tuple[int, StateDistribution]]
    ) -> "ConditionedEnumerator":
        """Oracle for the multi-observation setting of Section VI.

        Args:
            observations: ``(time, distribution)`` pairs of *additional*
                observations (the initial distribution is already the first
                observation).  Worlds are re-weighted by the product of the
                observation likelihoods at the observed states and
                renormalised -- exactly Equation 1 of the paper.
        """
        return ConditionedEnumerator(self, list(observations))


class ConditionedEnumerator:
    """Possible worlds re-weighted by additional observations (oracle)."""

    def __init__(
        self,
        base: PossibleWorldEnumerator,
        observations: List[Tuple[int, StateDistribution]],
    ) -> None:
        for time, _ in observations:
            if not (0 <= time <= base.horizon):
                raise ValidationError(
                    f"observation time {time} outside horizon "
                    f"[0, {base.horizon}]"
                )
        self.base = base
        self.observations = observations

    def worlds(self) -> Iterator[Tuple[Trajectory, float]]:
        """Yield possible worlds with *normalised posterior* weights."""
        weighted: List[Tuple[Trajectory, float]] = []
        total = 0.0
        for trajectory, probability in self.base.worlds():
            weight = probability
            for time, distribution in self.observations:
                weight *= distribution.probability(trajectory[time])
            if weight > 0.0:
                weighted.append((trajectory, weight))
                total += weight
        if total <= 0.0:
            raise ValidationError(
                "observations eliminated every possible world"
            )
        for trajectory, weight in weighted:
            yield trajectory, weight / total

    def probability_that(
        self, predicate: Callable[[Trajectory], bool]
    ) -> float:
        """Posterior probability of worlds satisfying ``predicate``."""
        return sum(
            weight
            for trajectory, weight in self.worlds()
            if predicate(trajectory)
        )

    def exists_probability(self, window: SpatioTemporalWindow) -> float:
        """Ground-truth multi-observation PST-exists probability."""
        return self.probability_that(lambda w: w.intersects(window))
