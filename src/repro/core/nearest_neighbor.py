"""Probabilistic nearest-neighbour queries over uncertain objects.

The paper's related work (Trajcevski et al. [9]) studies continuous
probabilistic NN queries over uncertain trajectories, and the paper's
conclusion invites "many more interesting queries ... on top of this
model".  This module provides snapshot PNN queries on the Markov model:

    Given a query location ``q`` and a timestamp ``t``, return for each
    object the probability that it is the nearest database object to
    ``q`` at time ``t``.

Under the model the objects' locations at ``t`` are independent (their
chains are independent processes), so with per-object marginals
``P(o at distance d)`` the nearest-neighbour probability factorises::

    P(o is NN) = sum_d P(dist(o) = d) * prod_{o' != o} P(dist(o') > d)
                 (ties split uniformly among the tied objects)

Distances are integer ranks derived from the state space's geometry
(Euclidean distances sorted and grouped), which keeps the computation an
exact finite sum.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.errors import QueryError
from repro.core.state_space import StateSpace
from repro.database.uncertain_db import TrajectoryDatabase

__all__ = ["nearest_neighbor_probabilities"]


def _distance_ranks(
    space: StateSpace, query_location: Tuple[float, ...]
) -> Tuple[np.ndarray, int]:
    """Map each state to a distance rank (0 = closest) from the query."""
    distances = np.empty(space.n_states, dtype=float)
    query = np.asarray(query_location, dtype=float)
    for state in space.all_states():
        location = np.asarray(space.location_of(state), dtype=float)
        if location.shape != query.shape:
            raise QueryError(
                f"query location has dimension {query.size}, state "
                f"space has dimension {location.size}"
            )
        distances[state] = float(np.linalg.norm(location - query))
    unique = np.unique(distances)
    ranks = np.searchsorted(unique, distances)
    return ranks.astype(np.int64), len(unique)


def nearest_neighbor_probabilities(
    database: TrajectoryDatabase,
    query_location: Sequence[float],
    time: int,
) -> Dict[str, float]:
    """``P(o is the nearest object to query_location at time)`` per object.

    Args:
        database: the database; its state space must provide locations.
        query_location: coordinates in the state space's geometry.
        time: the snapshot timestamp (each object's marginal at ``time``
            is obtained by propagating its first observation; objects
            observed after ``time`` are rejected).

    Returns:
        ``{object_id: probability}``; the probabilities sum to one
        (some object is always nearest when the database is non-empty).

    Raises:
        QueryError: on an empty database, missing geometry, or an object
            observed after ``time``.
    """
    if len(database) == 0:
        raise QueryError("nearest-neighbour query over an empty database")
    space = database.state_space
    if space is None:
        raise QueryError(
            "nearest-neighbour queries need a state space with locations"
        )
    if time < 0:
        raise QueryError(f"time must be non-negative, got {time}")

    ranks, n_ranks = _distance_ranks(space, tuple(query_location))

    # per-object distribution over distance ranks at the query time
    rank_pmfs: List[Tuple[str, np.ndarray]] = []
    for obj in database:
        first = obj.initial
        if first.time > time:
            raise QueryError(
                f"object {obj.object_id!r} is first observed at "
                f"t={first.time}, after the query time {time}"
            )
        chain = database.chain(obj.chain_id)
        marginal = chain.propagate(
            first.distribution, time - first.time
        )
        pmf = np.zeros(n_ranks, dtype=float)
        np.add.at(pmf, ranks, marginal.vector)
        rank_pmfs.append((obj.object_id, pmf))

    # survival[o][d] = P(dist(o) > d); prefix products give the
    # "all others farther" factor.  Ties at rank d are split uniformly
    # via inclusion of the tied mass with equal sharing.
    n_objects = len(rank_pmfs)
    pmf_matrix = np.stack([pmf for _, pmf in rank_pmfs])
    survival = 1.0 - np.cumsum(pmf_matrix, axis=1)
    survival = np.clip(survival, 0.0, 1.0)

    result: Dict[str, float] = {}
    for index, (object_id, pmf) in enumerate(rank_pmfs):
        total = 0.0
        for rank in range(n_ranks):
            p_here = pmf[rank]
            if p_here <= 0.0:
                continue
            # every other object must be strictly farther or tied; a tie
            # among 1 + T objects awards each a 1/(1 + T) share, so the
            # contribution is E[1/(1 + T)] over the independent others,
            # computed exactly by a dynamic program over the tie count.
            others = [j for j in range(n_objects) if j != index]
            total += p_here * _expected_share(
                [float(pmf_matrix[j, rank]) for j in others],
                [float(survival[j, rank]) for j in others],
            )
        result[object_id] = float(min(1.0, max(0.0, total)))
    return result


def _expected_share(
    tie_probabilities: List[float], farther_probabilities: List[float]
) -> float:
    """``E[1 / (1 + #tied)]`` over others being tied/farther/nearer.

    For each other object ``j`` at this rank: with probability
    ``farther`` it is strictly farther, with probability ``tie`` exactly
    tied, otherwise strictly nearer (contributing 0 to the share).
    A dynamic program over the count of tied objects among those not
    nearer yields the exact expectation.
    """
    # dp[k] = P(k others tied so far AND none nearer so far)
    dp = [1.0]
    for tie, farther in zip(tie_probabilities, farther_probabilities):
        nearer = max(0.0, 1.0 - tie - farther)
        _ = nearer  # explicit: mass with a nearer object contributes 0
        new = [0.0] * (len(dp) + 1)
        for count, probability in enumerate(dp):
            if probability == 0.0:
                continue
            new[count] += probability * farther
            new[count + 1] += probability * tie
        dp = new
    return sum(
        probability / (1 + count) for count, probability in enumerate(dp)
    )
