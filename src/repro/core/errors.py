"""Exception hierarchy for the :mod:`repro` library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Validation failures raise the most specific subclass
available; the message always names the offending value.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An input value violates a documented invariant."""


class NotStochasticError(ValidationError):
    """A transition matrix is not row-stochastic.

    Raised when a row of a transition matrix contains a negative entry or
    does not sum to one (within tolerance).
    """


class DimensionMismatchError(ValidationError):
    """Two linear-algebra operands have incompatible shapes."""


class StateSpaceError(ValidationError):
    """A state index or geometric coordinate is outside the state space."""


class QueryError(ValidationError):
    """A query specification is malformed (empty regions, bad times...)."""


class ObservationError(ValidationError):
    """An observation is inconsistent (bad time, zero-mass distribution...)."""


class InfeasibleEvidenceError(ReproError):
    """All possible worlds were eliminated by the given observations.

    Raised by observation fusion (Lemma 1 of the paper) when the product of
    the observation distributions has zero total mass, i.e. the observations
    contradict each other under the model.
    """


class BackendError(ReproError):
    """The requested linear-algebra backend is unavailable or misused."""


class SerializationError(ReproError):
    """A persisted artifact cannot be read or written."""
