"""Exception hierarchy for the :mod:`repro` library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Validation failures raise the most specific subclass
available; the message always names the offending value.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An input value violates a documented invariant."""


class NotStochasticError(ValidationError):
    """A transition matrix is not row-stochastic.

    Raised when a row of a transition matrix contains a negative entry or
    does not sum to one (within tolerance).
    """


class DimensionMismatchError(ValidationError):
    """Two linear-algebra operands have incompatible shapes."""


class StateSpaceError(ValidationError):
    """A state index or geometric coordinate is outside the state space."""


class QueryError(ValidationError):
    """A query specification is malformed (empty regions, bad times...)."""


class ObservationError(ValidationError):
    """An observation is inconsistent (bad time, zero-mass distribution...)."""


class InfeasibleEvidenceError(ReproError):
    """All possible worlds were eliminated by the given observations.

    Raised by observation fusion (Lemma 1 of the paper) when the product of
    the observation distributions has zero total mass, i.e. the observations
    contradict each other under the model.
    """


class BackendError(ReproError):
    """The requested linear-algebra backend is unavailable or misused."""


class SerializationError(ReproError):
    """A persisted artifact cannot be read or written."""


class ExecutionError(ReproError):
    """A failure in the execution substrate (pools, shared memory).

    Unlike :class:`ValidationError` (the *input* was wrong), an
    execution error means the *machinery* failed: a worker process
    died, a task overran its deadline, a shared-memory segment
    vanished.  The supervised dispatch layer
    (:mod:`repro.exec.dispatch`) retries transient execution errors
    and degrades process -> thread -> serial before letting one
    propagate, so user code normally only sees this after every
    recovery path was exhausted.
    """


class WorkerCrashError(ExecutionError):
    """A pool worker process died mid-task.

    Raised by the dispatch supervisor after pool rebuilds and
    resubmissions failed ``max_retries`` times in a row -- a single
    crash is recovered transparently (the pool is rebuilt and the
    unfinished shards resubmitted) and only recorded as a
    ``plan.degradations`` event.
    """


class TaskTimeoutError(ExecutionError):
    """A dispatched task overran its supervised deadline.

    Deadlines are priced from the calibrated
    :class:`~repro.core.planner.CostModel` (predicted seconds times
    :attr:`~repro.core.planner.SupervisorPolicy.timeout_multiplier`);
    a timed-out pool is torn down (the hung worker cannot be
    reclaimed) and the task retried on a fresh one before this
    propagates.
    """


class SegmentLostError(ExecutionError):
    """A shared-memory segment vanished or failed verification.

    Raised when a worker attaches a segment whose name no longer
    resolves (a racing unlink, a crashed publisher) or whose content
    no longer matches its publication checksum.  The supervisor
    treats it as transient; on exhaustion the publisher's cache is
    invalidated so the *next* query republishes from scratch.
    """


class InjectedFaultError(ExecutionError):
    """The deterministic chaos hook of :mod:`repro.exec.faults` fired.

    Never raised in production -- only by a
    :class:`~repro.exec.faults.FaultInjector` threaded through an
    :class:`~repro.exec.operators.ExecutionContext` in fault-injection
    tests, so recovery paths can be driven deterministically.
    """


class AdmissionRejected(ReproError):
    """The query service refused to admit a request.

    Raised by :meth:`repro.service.QueryService.submit` *before* any
    kernel work happens, when the cost-priced admission control of the
    request broker decides the request cannot (or should not) run:

    * the owning tenant's token budget is exhausted,
    * the predicted backlog already exceeds the service's
      ``backlog_budget_seconds`` (load shedding), or
    * the request's deadline is infeasible against the cost model's
      wall-time prediction.

    The message names the reason and the prices involved; the
    :attr:`reason` attribute carries a stable machine-readable tag
    (``"tenant-budget"``, ``"backlog"``, ``"deadline"`` or
    ``"stopped"``) so load generators can bucket rejections.
    """

    def __init__(self, message: str, reason: str = "backlog") -> None:
        super().__init__(message)
        self.reason = reason


class QuarantinedQueryError(ExecutionError):
    """A standing query was quarantined after repeated tick failures.

    The original error is recorded on
    :attr:`~repro.core.streaming.StandingQuery.error`; call
    :meth:`~repro.core.streaming.StandingQuery.reset` to rebuild the
    query's state from the database and resume ticking.
    """


class DegradedExecutionWarning(UserWarning):
    """Execution fell back to a slower-but-safe tier.

    Emitted (via :mod:`warnings`) when supervised dispatch exhausts
    its retries and degrades process -> thread -> serial.  The query
    still returns the exact answer; the degradation is also recorded
    on ``plan.degradations`` so ``explain()`` shows what happened.
    """
