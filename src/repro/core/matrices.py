"""The paper's augmented transition matrices.

This module implements the central trick of the paper (Sections V-A and
VI): pruning of possible worlds is *folded into the transition matrices*
so that plain vector--matrix products evaluate queries under possible-
worlds semantics.

Single observation (Section V-A) -- the absorbing construction
---------------------------------------------------------------
A virtual absorbing state ``TOP`` (the paper's black square) is appended
after the ``n`` real states.  Two matrices of size ``(n+1) x (n+1)`` are
derived from the chain ``M`` and the query region ``S_q``::

    M_minus = [ M            0 ]        M_plus = [ M_out   row_sums_in ]
              [ 0            1 ]                 [ 0            1      ]

where ``M_out`` is ``M`` with every column in ``S_q`` zeroed and
``row_sums_in[i] = sum_{j in S_q} M[i, j]`` is the mass redirected to
``TOP``.  A transition into timestamp ``t`` uses ``M_plus`` when
``t in T_q`` and ``M_minus`` otherwise; worlds entering the query window
are thereby absorbed exactly once.

Multiple observations (Section VI) -- the doubled construction
--------------------------------------------------------------
Worlds that have already hit the window can no longer be collapsed into a
single state, because later observations condition on the current state.
The state space is doubled to ``{s} union {s_top}``::

    M_minus = [ M    0 ]        M_plus = [ M_out   M_in ]
              [ 0    M ]                 [ 0        M   ]

with ``M_in`` keeping only the columns in ``S_q``.  Block one holds worlds
that have not yet intersected the window, block two those that have.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, FrozenSet, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.errors import QueryError, ValidationError
from repro.core.markov import MarkovChain
from repro.linalg.ops import Backend, get_backend

__all__ = [
    "AbsorbingMatrices",
    "DoubledMatrices",
    "build_absorbing_matrices",
    "build_doubled_matrices",
    "build_ktimes_block_matrices",
]


def _coo_arrays(
    chain: MarkovChain, region: FrozenSet[int]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The chain's transitions as ``(rows, cols, values, target_inside)``.

    ``target_inside`` is the boolean mask of entries whose target column
    lies in ``region`` -- the partition every augmented construction
    needs, computed without a Python-level triple loop.
    """
    coo = chain.matrix.tocoo()
    rows = np.asarray(coo.row, dtype=np.int64)
    cols = np.asarray(coo.col, dtype=np.int64)
    values = np.asarray(coo.data, dtype=float)
    region_states = np.fromiter(region, dtype=np.int64, count=len(region))
    inside = np.isin(cols, region_states)
    return rows, cols, values, inside


def _check_region(chain: MarkovChain, region: Iterable[int]) -> FrozenSet[int]:
    frozen = frozenset(int(s) for s in region)
    if not frozen:
        raise QueryError("query region is empty")
    if min(frozen) < 0 or max(frozen) >= chain.n_states:
        raise QueryError(
            f"region state outside [0, {chain.n_states}): "
            f"{sorted(frozen)[:4]}..."
        )
    return frozen


@dataclass
class AbsorbingMatrices:
    """The Section V-A pair ``(M_minus, M_plus)`` with the TOP state.

    Attributes:
        n_states: number of *real* states; TOP has index ``n_states``.
        region: the query region baked into ``m_plus``.
        m_minus: transition matrix used when the target time is outside
            ``T_q``.
        m_plus: transition matrix used when the target time is inside
            ``T_q``.
        backend: the linear-algebra backend that built the matrices.
    """

    n_states: int
    region: FrozenSet[int]
    m_minus: Any
    m_plus: Any
    backend: Backend
    _transposed: Optional[Tuple[Any, Any]] = field(default=None, repr=False)

    @property
    def top_index(self) -> int:
        """Index of the absorbing TOP state."""
        return self.n_states

    @property
    def size(self) -> int:
        """Dimension of the augmented matrices (``n_states + 1``)."""
        return self.n_states + 1

    def matrix_for_target_time(self, time: int, times: FrozenSet[int]) -> Any:
        """``m_plus`` when ``time`` is a query time, else ``m_minus``."""
        return self.m_plus if time in times else self.m_minus

    def transposed(self) -> Tuple[Any, Any]:
        """``(M_minus^T, M_plus^T)`` for the query-based backward pass."""
        if self._transposed is None:
            self._transposed = (
                self.backend.transpose(self.m_minus),
                self.backend.transpose(self.m_plus),
            )
        return self._transposed

    def extend_initial(
        self, initial: np.ndarray, start_time: int, times: FrozenSet[int]
    ) -> np.ndarray:
        """Append the TOP entry to an initial distribution vector.

        Implements the paper's special case: when the start time itself
        belongs to ``T_q``, the mass already inside the region counts as a
        true hit and moves to TOP immediately.
        """
        if initial.shape != (self.n_states,):
            raise ValidationError(
                f"initial vector has shape {initial.shape}, "
                f"expected ({self.n_states},)"
            )
        extended = np.zeros(self.size, dtype=float)
        extended[: self.n_states] = initial
        if start_time in times:
            region_indices = np.fromiter(
                self.region, dtype=int, count=len(self.region)
            )
            extended[self.top_index] = float(initial[region_indices].sum())
            extended[region_indices] = 0.0
        return extended


@dataclass
class DoubledMatrices:
    """The Section VI pair over the doubled state space ``{s} u {s_top}``.

    States ``0 .. n-1`` are "window not yet hit"; states ``n .. 2n-1`` are
    their "window already hit" shadows.
    """

    n_states: int
    region: FrozenSet[int]
    m_minus: Any
    m_plus: Any
    backend: Backend
    _transposed: Optional[Tuple[Any, Any]] = field(default=None, repr=False)

    @property
    def size(self) -> int:
        """Dimension of the doubled matrices (``2 * n_states``)."""
        return 2 * self.n_states

    def matrix_for_target_time(self, time: int, times: FrozenSet[int]) -> Any:
        """``m_plus`` when ``time`` is a query time, else ``m_minus``."""
        return self.m_plus if time in times else self.m_minus

    def transposed(self) -> Tuple[Any, Any]:
        """``(M_minus^T, M_plus^T)``."""
        if self._transposed is None:
            self._transposed = (
                self.backend.transpose(self.m_minus),
                self.backend.transpose(self.m_plus),
            )
        return self._transposed

    def extend_initial(
        self, initial: np.ndarray, start_time: int, times: FrozenSet[int]
    ) -> np.ndarray:
        """Lay out an initial distribution over the doubled space."""
        if initial.shape != (self.n_states,):
            raise ValidationError(
                f"initial vector has shape {initial.shape}, "
                f"expected ({self.n_states},)"
            )
        extended = np.zeros(self.size, dtype=float)
        extended[: self.n_states] = initial
        if start_time in times:
            for state in self.region:
                extended[self.n_states + state] = extended[state]
                extended[state] = 0.0
        return extended

    def tile_observation(self, observation: np.ndarray) -> np.ndarray:
        """Replicate an observation pdf over both blocks.

        Observations carry no information about whether the window was hit
        (the paper's ``obs = (0, 0.5, 0, 0, 0.5, 0)`` example), so the same
        pdf applies to both the plain and the shadow block.
        """
        if observation.shape != (self.n_states,):
            raise ValidationError(
                f"observation vector has shape {observation.shape}, "
                f"expected ({self.n_states},)"
            )
        return np.concatenate([observation, observation])

    def hit_probability(self, vector: np.ndarray) -> float:
        """Total mass in the shadow ("window hit") block."""
        return float(np.asarray(vector)[self.n_states:].sum())


def build_absorbing_matrices(
    chain: MarkovChain,
    region: Iterable[int],
    backend: Optional[str] = None,
) -> AbsorbingMatrices:
    """Construct the Section V-A matrices for ``chain`` and ``region``.

    Args:
        chain: the object's Markov model.
        region: the spatial query region ``S_q``.
        backend: linear-algebra backend name (default scipy).
    """
    frozen = _check_region(chain, region)
    linalg = get_backend(backend)
    n = chain.n_states
    top = n
    rows, cols, values, inside = _coo_arrays(chain, frozen)

    minus_rows = np.append(rows, top)
    minus_cols = np.append(cols, top)
    minus_vals = np.append(values, 1.0)

    redirected = np.bincount(
        rows[inside], weights=values[inside], minlength=n
    )
    sources = np.nonzero(redirected)[0]
    plus_rows = np.concatenate([rows[~inside], sources, [top]])
    plus_cols = np.concatenate([
        cols[~inside], np.full(sources.size, top, dtype=np.int64), [top]
    ])
    plus_vals = np.concatenate([
        values[~inside], redirected[sources], [1.0]
    ])

    return AbsorbingMatrices(
        n_states=n,
        region=frozen,
        m_minus=linalg.build_coo(
            n + 1, n + 1, minus_rows, minus_cols, minus_vals
        ),
        m_plus=linalg.build_coo(
            n + 1, n + 1, plus_rows, plus_cols, plus_vals
        ),
        backend=linalg,
    )


def build_doubled_matrices(
    chain: MarkovChain,
    region: Iterable[int],
    backend: Optional[str] = None,
) -> DoubledMatrices:
    """Construct the Section VI doubled matrices for ``chain``/``region``."""
    frozen = _check_region(chain, region)
    linalg = get_backend(backend)
    n = chain.n_states
    rows, cols, values, inside = _coo_arrays(chain, frozen)

    # minus: blocks (1,1) and (2,2) both hold M
    minus_rows = np.concatenate([rows, rows + n])
    minus_cols = np.concatenate([cols, cols + n])
    minus_vals = np.concatenate([values, values])
    # plus: block (2,2) holds M, (1,1) holds M - M_in, (1,2) holds M_in
    plus_rows = np.concatenate([
        rows + n, rows[~inside], rows[inside]
    ])
    plus_cols = np.concatenate([
        cols + n, cols[~inside], cols[inside] + n
    ])
    plus_vals = np.concatenate([
        values, values[~inside], values[inside]
    ])

    return DoubledMatrices(
        n_states=n,
        region=frozen,
        m_minus=linalg.build_coo(
            2 * n, 2 * n, minus_rows, minus_cols, minus_vals
        ),
        m_plus=linalg.build_coo(
            2 * n, 2 * n, plus_rows, plus_cols, plus_vals
        ),
        backend=linalg,
    )


def build_ktimes_block_matrices(
    chain: MarkovChain,
    region: Iterable[int],
    n_query_times: int,
    backend: Optional[str] = None,
) -> Tuple[Any, Any]:
    """The memory-*inefficient* blocked matrices for PSTkQ (Section VII).

    Builds the ``(|T_q|+1) * n`` square matrices whose block ``b`` tracks
    worlds that have visited the window exactly ``b`` times::

        M_minus = diag(M, ..., M)
        M_plus  = block-bidiagonal with M_out on the diagonal and M_in on
                  the superdiagonal (the last block keeps full M, as the
                  count saturates at |T_q|).

    The paper recommends the :mod:`repro.core.ktimes` C(t) algorithm
    instead; this construction exists as its reference implementation and
    for the memory-ablation benchmark.

    Returns:
        ``(m_minus, m_plus)`` of dimension ``(n_query_times + 1) * n``.
    """
    frozen = _check_region(chain, region)
    if n_query_times < 1:
        raise QueryError(
            f"need at least one query time, got {n_query_times}"
        )
    linalg = get_backend(backend)
    n = chain.n_states
    blocks = n_query_times + 1
    rows, cols, values, inside = _coo_arrays(chain, frozen)

    minus_rows: List[np.ndarray] = []
    minus_cols: List[np.ndarray] = []
    minus_vals: List[np.ndarray] = []
    plus_rows: List[np.ndarray] = []
    plus_cols: List[np.ndarray] = []
    plus_vals: List[np.ndarray] = []
    for b in range(blocks):
        offset = b * n
        minus_rows.append(rows + offset)
        minus_cols.append(cols + offset)
        minus_vals.append(values)
        if b < blocks - 1:
            plus_rows.append(rows[~inside] + offset)
            plus_cols.append(cols[~inside] + offset)
            plus_vals.append(values[~inside])
            plus_rows.append(rows[inside] + offset)
            plus_cols.append(cols[inside] + offset + n)
            plus_vals.append(values[inside])
        else:
            # the count saturates: the final block keeps the full chain
            plus_rows.append(rows + offset)
            plus_cols.append(cols + offset)
            plus_vals.append(values)

    size = blocks * n
    return (
        linalg.build_coo(
            size,
            size,
            np.concatenate(minus_rows),
            np.concatenate(minus_cols),
            np.concatenate(minus_vals),
        ),
        linalg.build_coo(
            size,
            size,
            np.concatenate(plus_rows),
            np.concatenate(plus_cols),
            np.concatenate(plus_vals),
        ),
    )
