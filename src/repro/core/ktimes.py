"""PST-k-times query processing -- Section VII.

Definition 4 asks, for every ``k``, for the probability that the object is
inside the query region at *exactly* ``k`` of the query timestamps.  The
paper proposes two object-based evaluations:

* a blocked-matrix construction over the product space
  ``S x {0 .. |T_q|}`` (memory-hungry; see
  :func:`repro.core.matrices.build_ktimes_block_matrices`), and
* the memory-efficient **C(t) algorithm**: a ``(|T_q|+1) x |S|`` matrix
  ``C`` whose entry ``C[i, j]`` is the probability that the object sits at
  state ``s_j`` having visited the window exactly ``i`` times.  Each step
  multiplies every row by ``M``; at query timestamps the columns of the
  query region are shifted down one row (the visit count increments).

Both are implemented here; the test suite checks them against each other,
against the brute-force enumerator, and against the paper's worked example
``(0.136, 0.672, 0.192)``.

These per-object forms are the *reference* implementations.  Database
execution runs the stacked cohort form instead --
:func:`repro.core.batch.batch_ktimes_distribution` over the shared
:data:`~repro.exec.operators.KTIMES_SWEEP` operator (one sparse product
and one cohort-wide column shift per timestep for all objects of a
chain, shardable across the process pool of
:mod:`repro.exec.dispatch`) -- and standing sliding-window queries use
the incremental C-block ladder of :mod:`repro.core.streaming` built on
the shift-invariant :data:`~repro.exec.operators.KTIMES_CORE` backward
core.  All of them agree with the functions here to 1e-12 (asserted in
the cross-tier parity suite).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.distribution import StateDistribution
from repro.core.errors import QueryError, ValidationError
from repro.core.markov import MarkovChain
from repro.core.matrices import build_ktimes_block_matrices
from repro.core.query import SpatioTemporalWindow
from repro.linalg.ops import vecmat

__all__ = [
    "ktimes_distribution",
    "ktimes_distribution_blocked",
    "ktimes_probability",
]


def _check(chain: MarkovChain, initial: StateDistribution,
           window: SpatioTemporalWindow, start_time: int) -> None:
    if initial.n_states != chain.n_states:
        raise ValidationError(
            f"initial distribution over {initial.n_states} states, "
            f"chain over {chain.n_states}"
        )
    window.validate_for(chain.n_states)
    if start_time < 0:
        raise QueryError(f"start_time must be non-negative, got {start_time}")
    if window.t_start < start_time:
        raise QueryError(
            f"query time {window.t_start} precedes the observation at "
            f"t={start_time}"
        )


def ktimes_distribution(
    chain: MarkovChain,
    initial: StateDistribution,
    window: SpatioTemporalWindow,
    start_time: int = 0,
) -> np.ndarray:
    """Distribution over visit counts via the C(t) algorithm (Section VII).

    Args:
        chain: the object's Markov model.
        initial: the object's distribution at ``start_time``.
        window: the query window ``S_q x T_q``.
        start_time: timestamp of the observation.

    Returns:
        A vector ``p`` of length ``|T_q| + 1`` with
        ``p[k] = P(o visits S_q at exactly k times of T_q)``;
        sums to one.
    """
    _check(chain, initial, window, start_time)
    n = chain.n_states
    n_rows = window.duration + 1
    region_columns = np.fromiter(
        window.region, dtype=int, count=len(window.region)
    )
    region_columns.sort()

    c = np.zeros((n_rows, n), dtype=float)
    c[0, :] = initial.vector
    if start_time in window.times:
        # footnote 3: probability mass already inside the window starts
        # with one visit
        _shift_down(c, region_columns)

    matrix = chain.matrix
    for time in range(start_time + 1, window.t_end + 1):
        c = np.asarray(c @ matrix, dtype=float)
        if time in window.times:
            _shift_down(c, region_columns)
    return c.sum(axis=1)


def _shift_down(c: np.ndarray, region_columns: np.ndarray) -> None:
    """Increment the visit count for mass inside the region (in place).

    ``c[i, j] <- c[i-1, j]`` for region columns, and the top row becomes
    zero -- the paper's column shift.
    """
    c[1:, region_columns] = c[:-1, region_columns]
    c[0, region_columns] = 0.0


def ktimes_distribution_blocked(
    chain: MarkovChain,
    initial: StateDistribution,
    window: SpatioTemporalWindow,
    start_time: int = 0,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Distribution over visit counts via the blocked matrices.

    The reference implementation the paper describes first: a vector over
    the product space ``S x {0 .. |T_q|}`` pushed through the blocked
    ``M_minus`` / ``M_plus``.  Memory is ``|T_q| + 1`` times the plain
    chain's, which is exactly why the C(t) algorithm exists; this variant
    is kept for cross-validation and the memory ablation benchmark.
    """
    _check(chain, initial, window, start_time)
    n = chain.n_states
    blocks = window.duration + 1
    m_minus, m_plus = build_ktimes_block_matrices(
        chain, window.region, window.duration, backend
    )

    vector = np.zeros(blocks * n, dtype=float)
    vector[:n] = initial.vector
    if start_time in window.times:
        for state in window.region:
            vector[n + state] = vector[state]
            vector[state] = 0.0

    for time in range(start_time + 1, window.t_end + 1):
        matrix = m_plus if time in window.times else m_minus
        vector = np.asarray(vecmat(vector, matrix), dtype=float)
    return vector.reshape(blocks, n).sum(axis=1)


def ktimes_probability(
    chain: MarkovChain,
    initial: StateDistribution,
    window: SpatioTemporalWindow,
    k: int,
    start_time: int = 0,
) -> float:
    """``P(o visits S_q at exactly k times of T_q)`` for a single ``k``."""
    if not (0 <= k <= window.duration):
        raise QueryError(f"k={k} outside [0, |T_q|={window.duration}]")
    return float(
        ktimes_distribution(chain, initial, window, start_time)[k]
    )
