"""The query engine: one entry point for all queries and methods.

:class:`QueryEngine` evaluates a PST query over every object of a
:class:`~repro.database.uncertain_db.TrajectoryDatabase`.  By default
(``method="auto"``) the engine *plans* its own execution: a cost model
(:mod:`repro.core.planner`) picks query-based, object-based or
Monte-Carlo processing per chain group, and the plan runs as a staged
filter--refinement pipeline (:mod:`repro.core.pipeline`) -- R-tree
geometric prefilter, exact BFS reachability pruning, then the shared
operator layer (:mod:`repro.exec.operators`), dispatched serially,
across a thread pool (independent chain groups), or across the
shared-memory process pool of :mod:`repro.exec.dispatch` (chain
groups *and* within-chain object shards -- the mode that scales a
single-chain database past the GIL).  Pass
``cost_model=CostModel.from_calibration()`` to plan with coefficients
measured on this machine (``repro-bench calibrate``,
:mod:`repro.exec.calibrate`) instead of the hand-derived defaults.
Forcing a method is still supported:

* ``"qb"`` -- query-based: one backward pass per chain, then one dot
  product per object (Section V-B).  Objects with multiple observations
  automatically fall back to object-based Section VI processing.
* ``"ob"`` -- object-based: one stacked forward pass per chain group
  (Section V-A).
* ``"mc"`` -- the Monte-Carlo baseline (Section VIII-A).

All filter stages are exact-safe, so any forced method returns the same
values as ``"auto"`` (to 1e-12; asserted in the test suite).

Results come back as a :class:`QueryResult` mapping object ids to
probabilities (or to visit-count distributions for PSTkQ), carrying the
executed :class:`~repro.core.planner.QueryPlan` with per-stage
candidate counts and timings -- also available directly through
:meth:`QueryEngine.explain`.
"""

from __future__ import annotations

import time as _time
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.errors import QueryError, ValidationError
from repro.core.pipeline import QueryPipeline
from repro.core.plan_cache import PlanCache
from repro.core.planner import (
    CostModel,
    PlanOptions,
    QueryPlan,
    QueryPlanner,
    resolve_options,
)
from repro.core.query import (
    PSTExistsQuery,
    PSTForAllQuery,
    PSTKTimesQuery,
    PSTQuery,
)
from repro.database.pruning import ReachabilityPruner
from repro.database.uncertain_db import TrajectoryDatabase

__all__ = ["QueryEngine", "QueryResult"]

ResultValue = Union[float, np.ndarray]

_METHODS = ("auto", "qb", "ob", "mc")


@dataclass
class QueryResult:
    """The per-object answers of one query evaluation.

    Attributes:
        query: the evaluated query.
        method: the *requested* method (``"auto"``, ``"qb"``, ``"ob"``
            or ``"mc"``); the per-group methods actually executed are
            on :attr:`plan`.
        values: ``{object_id: probability}`` for exists/for-all queries,
            ``{object_id: count distribution}`` for k-times queries with
            ``k=None``.
        elapsed_seconds: wall-clock evaluation time.
        plan: the executed :class:`~repro.core.planner.QueryPlan` with
            per-stage candidate counts and timings (None only for
            trivial evaluations that never reach the pipeline).
            Results produced by a standing query's
            :meth:`~repro.core.streaming.StandingQuery.tick` instead
            carry a ``streaming`` stage recording the tick number, the
            per-tick candidate delta, and the sparse products spent.
    """

    query: PSTQuery
    method: str
    values: Dict[str, ResultValue]
    elapsed_seconds: float = 0.0
    plan: Optional[QueryPlan] = None

    def probability(self, object_id: str) -> ResultValue:
        """The answer for one object."""
        try:
            return self.values[object_id]
        except KeyError:
            raise ValidationError(
                f"no result for object {object_id!r}"
            ) from None

    def above(self, threshold: float) -> Dict[str, float]:
        """Objects whose (scalar) probability reaches ``threshold``."""
        return {
            object_id: float(value)
            for object_id, value in self.values.items()
            if np.isscalar(value) and float(value) >= threshold
        }

    def top(self, k: int) -> List[Tuple[str, float]]:
        """The ``k`` most probable objects (scalar results only)."""
        scalars = [
            (object_id, float(value))
            for object_id, value in self.values.items()
            if np.isscalar(value)
        ]
        scalars.sort(key=lambda pair: (-pair[1], pair[0]))
        return scalars[:k]

    def __len__(self) -> int:
        return len(self.values)


class QueryEngine:
    """Evaluates PST queries over a trajectory database.

    Objects sharing a chain are evaluated *batched* (see
    :mod:`repro.core.batch`); augmented matrices, backward vectors and
    BFS reachability labellings are reused across queries through the
    engine's :class:`~repro.core.plan_cache.PlanCache` and
    :class:`~repro.database.pruning.ReachabilityPruner`, so monitoring
    workloads that re-issue windows over the same chains pay
    construction once.

    Args:
        database: the database to query.
        backend: linear-algebra backend name (default scipy).
        plan_cache: cache for matrices/backward vectors; a private one
            is created when omitted.  Pass a shared instance to
            amortise construction across several engines (it is
            thread-safe).
        cost_model: planner coefficients; defaults are tuned for the
            batched scipy kernels.  Use
            :meth:`~repro.core.planner.CostModel.from_calibration`
            for coefficients least-squares-fitted to this machine's
            measured kernel times.
    """

    def __init__(
        self,
        database: TrajectoryDatabase,
        backend: Optional[str] = None,
        plan_cache: Optional[PlanCache] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.database = database
        self.backend = backend
        self.plan_cache = (
            plan_cache if plan_cache is not None else PlanCache()
        )
        self.planner = QueryPlanner(
            database,
            plan_cache=self.plan_cache,
            backend=backend,
            cost_model=cost_model,
        )
        self.pruner = ReachabilityPruner(database)
        self.pipeline = QueryPipeline(
            database,
            plan_cache=self.plan_cache,
            backend=backend,
            pruner=self.pruner,
        )
        self._streaming = None
        self._prune_deprecation_emitted = False
        # auto-stream detection (PlanOptions.auto_stream): the last
        # seen window signature, the stride of the last observed
        # slide (promotion needs the same stride twice in a row), and
        # the standing query a confirmed slide was promoted onto
        self._auto_signature: Optional[tuple] = None
        self._auto_times: Optional[frozenset] = None
        self._auto_stride: Optional[int] = None
        self._auto_standing = None

    # ------------------------------------------------------------------
    # public entry points
    # ------------------------------------------------------------------
    def evaluate(
        self,
        query: PSTQuery,
        method: str = "auto",
        prune: Optional[bool] = None,
        n_samples: Optional[int] = None,
        seed: Optional[int] = None,
        options: Optional[PlanOptions] = None,
    ) -> QueryResult:
        """Evaluate ``query`` for every object in the database.

        Args:
            query: a :class:`PSTExistsQuery`, :class:`PSTForAllQuery` or
                :class:`PSTKTimesQuery`.
            method: ``"auto"`` (cost-based planning, the default) or a
                forced ``"qb"``/``"ob"``/``"mc"``.
            prune: deprecated -- use
                ``options=PlanOptions(prefilter=..., bfs_prune=...)``.
                Honoured for *every* method now (it used to be silently
                ignored outside OB): ``True`` forces the BFS filter on,
                ``False`` forces both filter stages off.
            n_samples: Monte-Carlo sample count (MC only; paper default
                100).
            seed: Monte-Carlo base seed; every object samples its own
                stream derived from it.
            options: planner overrides (filters, parallelism, cost
                model); see :class:`~repro.core.planner.PlanOptions`.

        Returns:
            A :class:`QueryResult`; for PSTkQ with ``k=None`` the values
            are full count distributions, otherwise scalars.  The
            executed plan (stage cardinalities, timings, per-group
            method choices) is on :attr:`QueryResult.plan`.
        """
        if method not in _METHODS:
            raise QueryError(
                f"unknown method {method!r}; expected one of {_METHODS}"
            )
        if prune is not None and not self._prune_deprecation_emitted:
            # once per engine, not per query: a monitoring loop passing
            # prune= every tick should not flood the warning log
            self._prune_deprecation_emitted = True
            warnings.warn(
                "QueryEngine.evaluate(prune=...) is deprecated; use "
                "options=PlanOptions(prefilter=..., bfs_prune=...) "
                "instead",
                DeprecationWarning,
                stacklevel=2,
            )
        query.window.validate_for(self.database.n_states)
        effective = resolve_options(
            options, method, n_samples, seed, prune
        )
        if effective.auto_stream and effective.method is None:
            delegated = self._auto_stream_tick(query)
            if delegated is not None:
                return delegated
        started = _time.perf_counter()
        plan: Optional[QueryPlan] = None
        if isinstance(query, PSTExistsQuery):
            plan = self.planner.plan(query, effective)
            values = self.pipeline.execute(plan, query)
        elif isinstance(query, PSTForAllQuery):
            values, plan = self._evaluate_forall(query, effective)
        elif isinstance(query, PSTKTimesQuery):
            plan = self.planner.plan(query, effective)
            values = self.pipeline.execute(plan, query)
        else:
            raise QueryError(f"unsupported query type {type(query)!r}")
        elapsed = _time.perf_counter() - started
        return QueryResult(
            query=query,
            method=method,
            values=values,
            elapsed_seconds=elapsed,
            plan=plan,
        )

    def explain(
        self,
        query: PSTQuery,
        method: str = "auto",
        n_samples: Optional[int] = None,
        seed: Optional[int] = None,
        options: Optional[PlanOptions] = None,
    ) -> QueryPlan:
        """Evaluate ``query`` and return the executed plan.

        EXPLAIN-ANALYZE-style: the plan carries the cost-model
        estimates *and* the measured per-stage candidate counts and
        timings.  Use :meth:`QueryPlan.describe` for a readable
        rendering::

            print(engine.explain(query).describe())

        Monitoring workloads should register a standing query instead
        -- its plan swaps the filter stages for a ``streaming`` stage
        with per-tick candidate deltas::

            standing = engine.watch(query, stride=1)
            standing.tick()
            print(standing.explain().describe())
        """
        result = self.evaluate(
            query,
            method=method,
            n_samples=n_samples,
            seed=seed,
            options=options,
        )
        if result.plan is None:
            raise QueryError(
                "query reduced to a trivial answer; nothing to explain"
            )
        return result.plan

    def watch(
        self,
        query: PSTQuery,
        stride: int = 1,
        faults=None,
        quarantine_after: int = 3,
        on_quarantine=None,
    ):
        """Register ``query`` as a standing sliding-window query.

        Returns a :class:`~repro.core.streaming.StandingQuery` whose
        :meth:`~repro.core.streaming.StandingQuery.tick` evaluates the
        current window *incrementally* -- backward vectors are extended
        by one sparse product per slid timestamp instead of recomputed
        -- then slides it ``stride`` timestamps forward.  The streaming
        engine shares this engine's plan cache and reachability pruner,
        so artefacts built by either serve both.  ``faults``,
        ``quarantine_after`` and ``on_quarantine`` pass through to
        :meth:`~repro.core.streaming.StreamingQueryEngine.watch`.
        """
        from repro.core.streaming import StreamingQueryEngine

        if self._streaming is None:
            self._streaming = StreamingQueryEngine(
                self.database,
                backend=self.backend,
                plan_cache=self.plan_cache,
                pruner=self.pruner,
            )
        return self._streaming.watch(
            query,
            stride=stride,
            faults=faults,
            quarantine_after=quarantine_after,
            on_quarantine=on_quarantine,
        )

    # ------------------------------------------------------------------
    # auto-stream promotion (PlanOptions.auto_stream)
    # ------------------------------------------------------------------
    def _auto_stream_tick(self, query: PSTQuery):
        """Serve a re-issued slid window from a standing query, or None.

        A monitoring loop that calls ``evaluate`` with the same region
        and a window whose times slide by a constant stride is exactly
        the workload :meth:`watch` exists for.  With
        ``PlanOptions(auto_stream=True)`` the engine detects the slide
        -- same query type, ``k`` and relative time pattern, every
        timestamp shifted by the same ``s >= 1`` on *two consecutive*
        re-issues (a single slide is not a pattern; promoting
        speculatively would rebuild a standing query per call on
        irregular workloads) -- promotes the query onto a standing
        query, and serves subsequent evaluations as incremental
        ticks.  The returned result is the standing query's (values
        agree with batch evaluation to 1e-12), with
        ``plan.auto_streamed`` flagged so ``explain()`` shows the
        delegation.
        """
        times = query.window.times
        signature = (
            type(query).__name__,
            query.window.region,
            getattr(query, "k", None),
            tuple(sorted(t - min(times) for t in times)),
        )
        previous_times = (
            self._auto_times
            if self._auto_signature == signature
            else None
        )
        stride = None
        if previous_times is not None and times != previous_times:
            candidate = min(times) - min(previous_times)
            if candidate >= 1 and times == frozenset(
                t + candidate for t in previous_times
            ):
                stride = candidate
        result = None
        if stride is None:
            # new signature, exact repeat (plan cache already serves
            # those), or an irregular jump: drop any promotion state
            self._auto_stride = None
            self._auto_standing = None
        elif stride == self._auto_stride:
            # the stride repeated: the window is genuinely sliding
            standing = self._auto_standing
            if (
                standing is None
                or standing.stride != stride
                or standing.window != query.window
            ):
                standing = self.watch(query, stride=stride)
                self._auto_standing = standing
            result = standing.tick()
            result.query = query
            if result.plan is not None:
                result.plan.auto_streamed = True
        else:
            # first slide at this stride: remember it, stay batch
            self._auto_stride = stride
            self._auto_standing = None
        self._auto_signature = signature
        self._auto_times = times
        return result

    # ------------------------------------------------------------------
    # extension queries (thin, validated pass-throughs)
    # ------------------------------------------------------------------
    def first_passage(self, object_id: str, region, horizon: int):
        """First-entry-time distribution of one object into ``region``.

        See :func:`repro.core.temporal.first_passage_distribution`.
        """
        from repro.core.temporal import first_passage_distribution

        obj = self.database.get(object_id)
        chain = self.database.chain(obj.chain_id)
        return first_passage_distribution(
            chain,
            obj.initial.distribution,
            region,
            horizon,
            start_time=obj.initial.time,
            plan_cache=self.plan_cache,
        )

    def nearest_neighbor(self, location, time: int) -> Dict[str, float]:
        """Per-object probability of being nearest to ``location``.

        See :func:`repro.core.nearest_neighbor.nearest_neighbor_probabilities`.
        """
        from repro.core.nearest_neighbor import (
            nearest_neighbor_probabilities,
        )

        return nearest_neighbor_probabilities(
            self.database, location, time
        )

    def sequence_probabilities(
        self, pattern, length: int
    ) -> Dict[str, float]:
        """Per-object probability that its trajectory spells ``pattern``.

        Objects observed at different times are each evaluated from
        their own observation; see
        :func:`repro.core.sequence.sequence_probability`.
        """
        from repro.core.sequence import sequence_probability

        values: Dict[str, float] = {}
        for obj in self.database:
            chain = self.database.chain(obj.chain_id)
            values[obj.object_id] = sequence_probability(
                chain, obj.initial.distribution, pattern, length
            )
        return values

    # ------------------------------------------------------------------
    # for-all (complement identity, Section VII)
    # ------------------------------------------------------------------
    def _evaluate_forall(
        self, query: PSTForAllQuery, options: PlanOptions
    ) -> Tuple[Dict[str, ResultValue], Optional[QueryPlan]]:
        complement = (
            frozenset(range(self.database.n_states)) - query.region
        )
        if not complement:
            return (
                {obj.object_id: 1.0 for obj in self.database},
                None,
            )
        plan = self.planner.plan_window(
            query.window.with_region(complement),
            kind="exists",
            complemented=True,
            options=options,
            semantics="forall",
        )
        inner_query = PSTExistsQuery(plan.window)
        inner = self.pipeline.execute(plan, inner_query)
        return (
            {
                object_id: 1.0 - float(value)
                for object_id, value in inner.items()
            },
            plan,
        )
