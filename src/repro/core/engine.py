"""The query engine: one entry point for all queries and methods.

:class:`QueryEngine` evaluates a PST query over every object of a
:class:`~repro.database.uncertain_db.TrajectoryDatabase` using one of the
paper's processing strategies:

* ``"qb"`` (default) -- query-based: one backward pass per chain, then one
  dot product per object (Section V-B).  Objects with multiple
  observations automatically fall back to object-based Section VI
  processing, since the backward vector cannot absorb per-object evidence.
* ``"ob"`` -- object-based: one forward pass per object (Section V-A),
  optionally behind the reachability pruning filter.
* ``"mc"`` -- the Monte-Carlo baseline (Section VIII-A).

Results come back as a :class:`QueryResult` mapping object ids to
probabilities (or to visit-count distributions for PSTkQ).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.batch import (
    batch_exists_multi,
    batch_ob_exists,
    batch_qb_exists,
)
from repro.core.errors import QueryError, ValidationError
from repro.core.ktimes import ktimes_distribution
from repro.core.montecarlo import MonteCarloSampler
from repro.core.plan_cache import PlanCache
from repro.core.query import (
    PSTExistsQuery,
    PSTForAllQuery,
    PSTKTimesQuery,
    PSTQuery,
    SpatioTemporalWindow,
)
from repro.database.pruning import ReachabilityPruner
from repro.database.uncertain_db import TrajectoryDatabase

__all__ = ["QueryEngine", "QueryResult"]

ResultValue = Union[float, np.ndarray]


@dataclass
class QueryResult:
    """The per-object answers of one query evaluation.

    Attributes:
        query: the evaluated query.
        method: ``"qb"``, ``"ob"`` or ``"mc"``.
        values: ``{object_id: probability}`` for exists/for-all queries,
            ``{object_id: count distribution}`` for k-times queries with
            ``k=None``.
        elapsed_seconds: wall-clock evaluation time.
    """

    query: PSTQuery
    method: str
    values: Dict[str, ResultValue]
    elapsed_seconds: float = 0.0

    def probability(self, object_id: str) -> ResultValue:
        """The answer for one object."""
        try:
            return self.values[object_id]
        except KeyError:
            raise ValidationError(
                f"no result for object {object_id!r}"
            ) from None

    def above(self, threshold: float) -> Dict[str, float]:
        """Objects whose (scalar) probability reaches ``threshold``."""
        return {
            object_id: float(value)
            for object_id, value in self.values.items()
            if np.isscalar(value) and float(value) >= threshold
        }

    def top(self, k: int) -> List[Tuple[str, float]]:
        """The ``k`` most probable objects (scalar results only)."""
        scalars = [
            (object_id, float(value))
            for object_id, value in self.values.items()
            if np.isscalar(value)
        ]
        scalars.sort(key=lambda pair: (-pair[1], pair[0]))
        return scalars[:k]

    def __len__(self) -> int:
        return len(self.values)


class QueryEngine:
    """Evaluates PST queries over a trajectory database.

    Objects sharing a chain are evaluated *batched*: their distribution
    vectors are stacked and advanced with one product per timestep (see
    :mod:`repro.core.batch`).  Augmented matrices and backward vectors
    are reused across queries through the engine's
    :class:`~repro.core.plan_cache.PlanCache`, so monitoring workloads
    that re-issue windows over the same chains pay construction once.

    Args:
        database: the database to query.
        backend: linear-algebra backend name (default scipy).
        plan_cache: cache for matrices/backward vectors; a private one
            is created when omitted.  Pass a shared instance to
            amortise construction across several engines.
    """

    def __init__(
        self,
        database: TrajectoryDatabase,
        backend: Optional[str] = None,
        plan_cache: Optional[PlanCache] = None,
    ) -> None:
        self.database = database
        self.backend = backend
        self.plan_cache = (
            plan_cache if plan_cache is not None else PlanCache()
        )

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def evaluate(
        self,
        query: PSTQuery,
        method: str = "qb",
        prune: bool = False,
        n_samples: int = 100,
        seed: Optional[int] = None,
    ) -> QueryResult:
        """Evaluate ``query`` for every object in the database.

        Args:
            query: a :class:`PSTExistsQuery`, :class:`PSTForAllQuery` or
                :class:`PSTKTimesQuery`.
            method: ``"qb"``, ``"ob"`` or ``"mc"``.
            prune: apply the reachability filter first (OB only); pruned
                objects are reported with probability zero.
            n_samples: Monte-Carlo sample count (MC only; paper default
                100).
            seed: Monte-Carlo RNG seed.

        Returns:
            A :class:`QueryResult`; for PSTkQ with ``k=None`` the values
            are full count distributions, otherwise scalars.
        """
        if method not in ("qb", "ob", "mc"):
            raise QueryError(
                f"unknown method {method!r}; expected 'qb', 'ob' or 'mc'"
            )
        query.window.validate_for(self.database.n_states)
        started = _time.perf_counter()
        if isinstance(query, PSTExistsQuery):
            values = self._evaluate_window(
                query.window, method, prune, n_samples, seed,
                complemented=False,
            )
        elif isinstance(query, PSTForAllQuery):
            values = self._evaluate_forall(
                query, method, n_samples, seed
            )
        elif isinstance(query, PSTKTimesQuery):
            values = self._evaluate_ktimes(query, method, n_samples, seed)
        else:
            raise QueryError(f"unsupported query type {type(query)!r}")
        elapsed = _time.perf_counter() - started
        return QueryResult(
            query=query,
            method=method,
            values=values,
            elapsed_seconds=elapsed,
        )

    # ------------------------------------------------------------------
    # extension queries (thin, validated pass-throughs)
    # ------------------------------------------------------------------
    def first_passage(self, object_id: str, region, horizon: int):
        """First-entry-time distribution of one object into ``region``.

        See :func:`repro.core.temporal.first_passage_distribution`.
        """
        from repro.core.temporal import first_passage_distribution

        obj = self.database.get(object_id)
        chain = self.database.chain(obj.chain_id)
        return first_passage_distribution(
            chain,
            obj.initial.distribution,
            region,
            horizon,
            start_time=obj.initial.time,
            plan_cache=self.plan_cache,
        )

    def nearest_neighbor(self, location, time: int) -> Dict[str, float]:
        """Per-object probability of being nearest to ``location``.

        See :func:`repro.core.nearest_neighbor.nearest_neighbor_probabilities`.
        """
        from repro.core.nearest_neighbor import (
            nearest_neighbor_probabilities,
        )

        return nearest_neighbor_probabilities(
            self.database, location, time
        )

    def sequence_probabilities(
        self, pattern, length: int
    ) -> Dict[str, float]:
        """Per-object probability that its trajectory spells ``pattern``.

        Objects observed at different times are each evaluated from
        their own observation; see
        :func:`repro.core.sequence.sequence_probability`.
        """
        from repro.core.sequence import sequence_probability

        values: Dict[str, float] = {}
        for obj in self.database:
            chain = self.database.chain(obj.chain_id)
            values[obj.object_id] = sequence_probability(
                chain, obj.initial.distribution, pattern, length
            )
        return values

    # ------------------------------------------------------------------
    # exists
    # ------------------------------------------------------------------
    def _evaluate_window(
        self,
        window: SpatioTemporalWindow,
        method: str,
        prune: bool,
        n_samples: int,
        seed: Optional[int],
        complemented: bool,
    ) -> Dict[str, ResultValue]:
        values: Dict[str, ResultValue] = {}
        groups = self.database.objects_by_chain()

        # One pruner (and one reverse BFS per chain) for the whole
        # evaluation, shared across all chain groups.
        surviving = None
        if prune and method != "mc":
            pruner = ReachabilityPruner(self.database)
            surviving = {
                obj.object_id for obj in pruner.candidates(window)
            }

        for chain_id, objects in groups.items():
            chain = self.database.chain(chain_id)
            if method == "mc":
                sampler = MonteCarloSampler(chain, seed=seed)
                for obj in objects:
                    if obj.has_multiple_observations():
                        estimate = sampler.exists_probability_multi(
                            obj.observations, window, n_samples
                        )
                    else:
                        estimate = sampler.exists_probability(
                            obj.initial.distribution,
                            window,
                            n_samples,
                            start_time=obj.initial.time,
                        )
                    values[obj.object_id] = estimate.estimate
                continue

            if surviving is not None:
                for obj in objects:
                    if obj.object_id not in surviving:
                        values[obj.object_id] = 0.0
                objects = [
                    obj for obj in objects
                    if obj.object_id in surviving
                ]

            single = [
                obj for obj in objects
                if not obj.has_multiple_observations()
            ]
            multi = [
                obj for obj in objects if obj.has_multiple_observations()
            ]

            if single:
                evaluate = (
                    batch_qb_exists if method == "qb" else batch_ob_exists
                )
                probabilities = evaluate(
                    chain,
                    [obj.initial.distribution for obj in single],
                    window,
                    start_times=[obj.initial.time for obj in single],
                    backend=self.backend,
                    plan_cache=self.plan_cache,
                )
                for obj, probability in zip(single, probabilities):
                    values[obj.object_id] = float(probability)

            if multi:  # Section VI path for both qb and ob
                probabilities = batch_exists_multi(
                    chain,
                    [obj.observations for obj in multi],
                    window,
                    backend=self.backend,
                    plan_cache=self.plan_cache,
                )
                for obj, probability in zip(multi, probabilities):
                    values[obj.object_id] = float(probability)
        return values

    # ------------------------------------------------------------------
    # for-all (complement identity, Section VII)
    # ------------------------------------------------------------------
    def _evaluate_forall(
        self,
        query: PSTForAllQuery,
        method: str,
        n_samples: int,
        seed: Optional[int],
    ) -> Dict[str, ResultValue]:
        if method == "mc":
            values: Dict[str, ResultValue] = {}
            for chain_id, objects in self.database.objects_by_chain().items():
                sampler = MonteCarloSampler(
                    self.database.chain(chain_id), seed=seed
                )
                for obj in objects:
                    estimate = sampler.forall_probability(
                        obj.initial.distribution,
                        query.window,
                        n_samples,
                        start_time=obj.initial.time,
                    )
                    values[obj.object_id] = estimate.estimate
            return values
        complement = (
            frozenset(range(self.database.n_states)) - query.region
        )
        if not complement:
            return {obj.object_id: 1.0 for obj in self.database}
        inner = self._evaluate_window(
            query.window.with_region(complement),
            method,
            prune=False,
            n_samples=n_samples,
            seed=seed,
            complemented=True,
        )
        return {
            object_id: 1.0 - float(value)
            for object_id, value in inner.items()
        }

    # ------------------------------------------------------------------
    # k-times
    # ------------------------------------------------------------------
    def _evaluate_ktimes(
        self,
        query: PSTKTimesQuery,
        method: str,
        n_samples: int,
        seed: Optional[int],
    ) -> Dict[str, ResultValue]:
        values: Dict[str, ResultValue] = {}
        for chain_id, objects in self.database.objects_by_chain().items():
            chain = self.database.chain(chain_id)
            if method == "mc":
                sampler = MonteCarloSampler(chain, seed=seed)
            for obj in objects:
                if obj.has_multiple_observations():
                    raise QueryError(
                        "PSTkQ with multiple observations is not part of "
                        "the paper's framework; query the first "
                        "observation only"
                    )
                if method == "mc":
                    distribution = sampler.ktimes_distribution(
                        obj.initial.distribution,
                        query.window,
                        n_samples,
                        start_time=obj.initial.time,
                    )
                else:
                    # OB and QB share the C(t) algorithm per object; the
                    # QB-specific blocked evaluator is available separately
                    # for benchmarking (QueryBasedKTimesEvaluator).
                    distribution = ktimes_distribution(
                        chain,
                        obj.initial.distribution,
                        query.window,
                        start_time=obj.initial.time,
                    )
                if query.k is None:
                    values[obj.object_id] = distribution
                else:
                    values[obj.object_id] = float(distribution[query.k])
        return values
