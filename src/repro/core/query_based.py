"""Query-based (QB) query processing -- Section V-B.

The query-based approach reverses the computation: one backward pass from
``t_end`` to the observation time with the *transposed* augmented matrices
produces a vector ``v`` whose entry ``v[s]`` is the probability that an
object starting at state ``s`` satisfies the query.  Each object is then
answered by a single (sparse) dot product ``P(o, 0) . v``.

The backward pass is shared across *all* objects that follow the same
chain, which is why QB beats OB by orders of magnitude on large databases
(Section V-C; Figures 8-10 of the paper).  Databases whose objects follow
per-class chains simply run one evaluator per class.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.core.distribution import StateDistribution
from repro.core.errors import QueryError, ValidationError
from repro.core.markov import MarkovChain
from repro.core.matrices import (
    AbsorbingMatrices,
    build_ktimes_block_matrices,
)
from repro.core.plan_cache import resolve_absorbing
from repro.core.query import SpatioTemporalWindow
from repro.exec.operators import BACKWARD_SWEEP

__all__ = [
    "QueryBasedEvaluator",
    "qb_exists_probability",
    "qb_forall_probability",
]


class QueryBasedEvaluator:
    """Pre-computed backward vector for one (chain, window) pair.

    Construction runs the backward pass once (``O(|S_reach|^2 . dt)`` in
    the paper's notation); afterwards :meth:`probability` answers each
    object in time proportional to its support size -- "a total CPU cost
    of O(1) per object" for point observations.

    Args:
        chain: the Markov model shared by the objects.
        window: the query window ``S_q x T_q``.
        start_time: the observation timestamp the backward pass stops at.
        matrices: pre-built absorbing matrices (reused when given).
        backend: linear-algebra backend name.
        plan_cache: optional :class:`~repro.core.plan_cache.PlanCache`
            supplying the matrices (ignored when ``matrices`` is given).
    """

    def __init__(
        self,
        chain: MarkovChain,
        window: SpatioTemporalWindow,
        start_time: int = 0,
        matrices: Optional[AbsorbingMatrices] = None,
        backend: Optional[str] = None,
        plan_cache=None,
    ) -> None:
        window.validate_for(chain.n_states)
        if start_time < 0:
            raise QueryError(
                f"start_time must be non-negative, got {start_time}"
            )
        if window.t_start < start_time:
            raise QueryError(
                f"query time {window.t_start} precedes start_time "
                f"{start_time}"
            )
        matrices = resolve_absorbing(
            chain, window.region, backend, plan_cache, matrices
        )
        self.chain = chain
        self.window = window
        self.start_time = start_time
        self.matrices = matrices
        self._backward = self._run_backward_pass()

    def _run_backward_pass(self) -> np.ndarray:
        """Compute ``v(start_time)`` per Section V-B.

        ``v(t_end) = (0, ..., 0, 1)`` (only TOP satisfies the query at the
        end); then ``v(t) = M(t -> t+1) . v(t+1)``, where the transition
        into a query timestamp uses ``M_plus`` and any other transition
        uses ``M_minus``.  Runs as the shared
        :data:`~repro.exec.operators.BACKWARD_SWEEP` operator -- the
        exact pass the batched kernels and the streaming anchor use.
        """
        vectors = BACKWARD_SWEEP(
            (self.matrices, self.window, [self.start_time]),
            self.chain,
            self.window.region,
        )
        return vectors[self.start_time]

    @property
    def backward_vector(self) -> np.ndarray:
        """``v(start_time)``: per-start-state satisfaction probability.

        Entry ``s < n`` is the probability that an object sitting at state
        ``s`` at ``start_time`` satisfies the query; the final entry is the
        TOP component (always 1).
        """
        return self._backward

    def state_probability(self, state: int) -> float:
        """Satisfaction probability for a point observation at ``state``."""
        if not (0 <= state < self.chain.n_states):
            raise ValidationError(
                f"state {state} out of range [0, {self.chain.n_states})"
            )
        # A point mass inside the region at a start time that is itself a
        # query timestamp is an immediate hit; extend_initial handles it.
        vector = np.zeros(self.chain.n_states, dtype=float)
        vector[state] = 1.0
        extended = self.matrices.extend_initial(
            vector, self.start_time, self.window.times
        )
        return float(extended @ self._backward)

    def probability(self, initial: StateDistribution) -> float:
        """``P_exists(o, S_q, T_q)`` for one object's distribution."""
        if initial.n_states != self.chain.n_states:
            raise ValidationError(
                f"initial distribution over {initial.n_states} states, "
                f"chain over {self.chain.n_states}"
            )
        extended = self.matrices.extend_initial(
            np.asarray(initial.vector, dtype=float),
            self.start_time,
            self.window.times,
        )
        return float(extended @ self._backward)

    def probabilities(
        self, initials: Iterable[StateDistribution]
    ) -> List[float]:
        """Batch evaluation -- one dot product per object."""
        return [self.probability(initial) for initial in initials]


def qb_exists_probability(
    chain: MarkovChain,
    initial: StateDistribution,
    window: SpatioTemporalWindow,
    start_time: int = 0,
    backend: Optional[str] = None,
    plan_cache=None,
) -> float:
    """One-shot QB PST-exists (builds the evaluator and answers once).

    Prefer constructing a :class:`QueryBasedEvaluator` explicitly when
    several objects share the chain -- that is the whole point of QB --
    or pass a :class:`~repro.core.plan_cache.PlanCache` so repeated
    calls reuse the matrices.
    """
    evaluator = QueryBasedEvaluator(
        chain,
        window,
        start_time=start_time,
        backend=backend,
        plan_cache=plan_cache,
    )
    return evaluator.probability(initial)


def qb_forall_probability(
    chain: MarkovChain,
    initial: StateDistribution,
    window: SpatioTemporalWindow,
    start_time: int = 0,
    backend: Optional[str] = None,
) -> float:
    """QB PST-for-all via the complement identity (Section VII)."""
    window.validate_for(chain.n_states)
    complement = frozenset(range(chain.n_states)) - window.region
    if not complement:
        return 1.0
    return 1.0 - qb_exists_probability(
        chain,
        initial,
        window.with_region(complement),
        start_time=start_time,
        backend=backend,
    )


class QueryBasedKTimesEvaluator:
    """QB evaluation of PSTkQ via the blocked matrices (Section VII).

    One backward pass propagates the ``|T_q| + 1`` per-count terminal
    indicators simultaneously as the columns of a dense matrix, so the
    cost grows linearly with ``|T_q|`` -- the behaviour Figure 10(b)
    reports.
    """

    def __init__(
        self,
        chain: MarkovChain,
        window: SpatioTemporalWindow,
        start_time: int = 0,
        backend: Optional[str] = None,
    ) -> None:
        window.validate_for(chain.n_states)
        if window.t_start < start_time:
            raise QueryError(
                f"query time {window.t_start} precedes start_time "
                f"{start_time}"
            )
        self.chain = chain
        self.window = window
        self.start_time = start_time
        self.n_blocks = window.duration + 1
        self.m_minus, self.m_plus = build_ktimes_block_matrices(
            chain, window.region, window.duration, backend
        )
        self._backward = self._run_backward_pass()

    def _run_backward_pass(self) -> np.ndarray:
        n = self.chain.n_states
        size = self.n_blocks * n
        # column k of the terminal matrix is the indicator of block k
        terminal = np.zeros((size, self.n_blocks), dtype=float)
        for block in range(self.n_blocks):
            terminal[block * n:(block + 1) * n, block] = 1.0
        current = terminal
        for time in range(self.window.t_end - 1, self.start_time - 1, -1):
            matrix = (
                self.m_plus
                if (time + 1) in self.window.times
                else self.m_minus
            )
            current = np.asarray(matrix @ current, dtype=float)
        return current

    def distribution(self, initial: StateDistribution) -> np.ndarray:
        """``P(k)`` for ``k = 0 .. |T_q|`` for one object."""
        if initial.n_states != self.chain.n_states:
            raise ValidationError(
                f"initial distribution over {initial.n_states} states, "
                f"chain over {self.chain.n_states}"
            )
        n = self.chain.n_states
        size = self.n_blocks * n
        extended = np.zeros(size, dtype=float)
        extended[:n] = initial.vector
        if self.start_time in self.window.times:
            # footnote 3: mass observed inside the region starts at k = 1
            for state in self.window.region:
                extended[n + state] = extended[state]
                extended[state] = 0.0
        return np.asarray(extended @ self._backward, dtype=float)
