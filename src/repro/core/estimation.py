"""Estimating transition matrices from historical trajectories.

Section IV of the paper assumes the transition probabilities are given,
"e.g. derived from expert knowledge or derived from historical data.
For example, ... the transition probabilities at each road intersection
are usually estimated by historic traffic records."  This module supplies
that estimation step so the library is usable end-to-end on raw
trajectory logs:

* :class:`ChainEstimator` -- accumulates transition counts from observed
  (certain) trajectories and produces a maximum-likelihood
  :class:`~repro.core.markov.MarkovChain`, with optional additive
  (Laplace) smoothing over a caller-supplied support structure;
* :func:`estimate_chain` -- one-shot convenience wrapper.

Smoothing policy: rows with observations are MLE (optionally smoothed
over the allowed successor set); states never observed as a source
become self-absorbing (probability 1 of staying), which keeps the matrix
stochastic without inventing transitions.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import scipy.sparse as sp

from repro.core.errors import ValidationError
from repro.core.markov import MarkovChain
from repro.core.trajectory import Trajectory

__all__ = ["ChainEstimator", "estimate_chain"]


class ChainEstimator:
    """Accumulates transition counts and builds an ML transition matrix.

    Args:
        n_states: size of the state space.
        support: optional ``{source: allowed successors}`` structure
            (e.g. a road network's adjacency).  When given, observed
            transitions outside the support raise, and smoothing spreads
            pseudo-counts only over allowed successors.
    """

    def __init__(
        self,
        n_states: int,
        support: Optional[Dict[int, Sequence[int]]] = None,
    ) -> None:
        if n_states < 1:
            raise ValidationError(
                f"n_states must be positive, got {n_states}"
            )
        self.n_states = int(n_states)
        self._counts: Dict[int, Dict[int, float]] = {}
        self._support: Optional[Dict[int, List[int]]] = None
        if support is not None:
            self._support = {}
            for source, successors in support.items():
                self._check_state(source)
                targets = sorted({int(t) for t in successors})
                for target in targets:
                    self._check_state(target)
                if not targets:
                    raise ValidationError(
                        f"state {source} has an empty successor set"
                    )
                self._support[int(source)] = targets

    def _check_state(self, state: int) -> None:
        if not (0 <= int(state) < self.n_states):
            raise ValidationError(
                f"state {state} out of range [0, {self.n_states})"
            )

    # ------------------------------------------------------------------
    # accumulation
    # ------------------------------------------------------------------
    def add_transition(
        self, source: int, target: int, weight: float = 1.0
    ) -> None:
        """Record one observed transition (optionally weighted)."""
        self._check_state(source)
        self._check_state(target)
        if weight <= 0:
            raise ValidationError(
                f"transition weight must be positive, got {weight}"
            )
        if self._support is not None:
            allowed = self._support.get(int(source))
            if allowed is None or int(target) not in allowed:
                raise ValidationError(
                    f"transition {source} -> {target} violates the "
                    f"declared support structure"
                )
        row = self._counts.setdefault(int(source), {})
        row[int(target)] = row.get(int(target), 0.0) + float(weight)

    def add_trajectory(self, trajectory: Trajectory) -> None:
        """Record every consecutive transition of a trajectory."""
        for source, target in zip(
            trajectory.states, trajectory.states[1:]
        ):
            self.add_transition(source, target)

    def add_trajectories(
        self, trajectories: Iterable[Trajectory]
    ) -> None:
        """Record a batch of trajectories."""
        for trajectory in trajectories:
            self.add_trajectory(trajectory)

    @property
    def total_transitions(self) -> float:
        """Total (weighted) observed transitions."""
        return sum(
            sum(row.values()) for row in self._counts.values()
        )

    def count(self, source: int, target: int) -> float:
        """Observed (weighted) count of one transition."""
        self._check_state(source)
        self._check_state(target)
        return self._counts.get(int(source), {}).get(int(target), 0.0)

    # ------------------------------------------------------------------
    # estimation
    # ------------------------------------------------------------------
    def to_chain(self, smoothing: float = 0.0) -> MarkovChain:
        """The maximum-likelihood chain (optionally Laplace-smoothed).

        Args:
            smoothing: pseudo-count added to every allowed successor of
                an *observed* source state.  With a support structure the
                allowed set is the declared adjacency; without one it is
                the set of observed successors (so 0-count transitions
                are never invented).

        Returns:
            A validated row-stochastic chain.  States never observed as
            a source become absorbing self-loops.
        """
        if smoothing < 0:
            raise ValidationError(
                f"smoothing must be non-negative, got {smoothing}"
            )
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for source in range(self.n_states):
            observed = self._counts.get(source, {})
            if not observed and (
                self._support is None or smoothing == 0.0
            ):
                rows.append(source)
                cols.append(source)
                vals.append(1.0)
                continue
            if self._support is not None:
                allowed = self._support.get(source)
                if allowed is None:
                    rows.append(source)
                    cols.append(source)
                    vals.append(1.0)
                    continue
            else:
                allowed = sorted(observed)
            weights = {
                target: observed.get(target, 0.0) + smoothing
                for target in allowed
            }
            total = sum(weights.values())
            if total <= 0:
                rows.append(source)
                cols.append(source)
                vals.append(1.0)
                continue
            for target, weight in weights.items():
                if weight > 0:
                    rows.append(source)
                    cols.append(target)
                    vals.append(weight / total)
        matrix = sp.csr_matrix(
            (vals, (rows, cols)),
            shape=(self.n_states, self.n_states),
            dtype=float,
        )
        return MarkovChain(matrix)


def estimate_chain(
    trajectories: Iterable[Trajectory],
    n_states: int,
    smoothing: float = 0.0,
    support: Optional[Dict[int, Sequence[int]]] = None,
) -> MarkovChain:
    """One-shot chain estimation from a trajectory log.

    Args:
        trajectories: observed (certain) trajectories.
        n_states: state-space size.
        smoothing: Laplace pseudo-count (see
            :meth:`ChainEstimator.to_chain`).
        support: optional adjacency restriction.
    """
    estimator = ChainEstimator(n_states, support=support)
    estimator.add_trajectories(trajectories)
    return estimator.to_chain(smoothing=smoothing)
