"""Probabilistic spatio-temporal query definitions.

A query window ``Q = S_q x T_q`` pairs a spatial region (any set of states,
not necessarily connected) with a temporal region (any set of timestamps,
not necessarily contiguous) -- Section III of the paper explicitly allows
arbitrary subsets of both domains.

Three query semantics are defined over the window:

* :class:`PSTExistsQuery`  (Definition 2) -- object in ``S_q`` at *some*
  ``t in T_q``.
* :class:`PSTForAllQuery`  (Definition 3) -- object in ``S_q`` at *all*
  ``t in T_q``.
* :class:`PSTKTimesQuery`  (Definition 4) -- object in ``S_q`` at *exactly
  k* timestamps of ``T_q``; the processor returns the full distribution
  over ``k = 0 .. |T_q|``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional

from repro.core.errors import QueryError

__all__ = [
    "SpatioTemporalWindow",
    "PSTQuery",
    "PSTExistsQuery",
    "PSTForAllQuery",
    "PSTKTimesQuery",
]


@dataclass(frozen=True)
class SpatioTemporalWindow:
    """The query window ``Q = S_q x T_q``.

    Attributes:
        region: the spatial query region ``S_q`` (state indices).
        times: the temporal query region ``T_q`` (timestamps).
    """

    region: FrozenSet[int]
    times: FrozenSet[int]

    def __post_init__(self) -> None:
        object.__setattr__(self, "region", frozenset(int(s) for s in self.region))
        object.__setattr__(self, "times", frozenset(int(t) for t in self.times))
        if not self.region:
            raise QueryError("query region is empty")
        if not self.times:
            raise QueryError("query time set is empty")
        if min(self.region) < 0:
            raise QueryError(f"negative state index {min(self.region)}")
        if min(self.times) < 0:
            raise QueryError(f"negative query time {min(self.times)}")

    @classmethod
    def from_ranges(
        cls,
        state_low: int,
        state_high: int,
        time_low: int,
        time_high: int,
    ) -> "SpatioTemporalWindow":
        """Contiguous window, e.g. the paper's states [100,120] x [20,25]."""
        if state_low > state_high:
            raise QueryError(
                f"empty state range [{state_low}, {state_high}]"
            )
        if time_low > time_high:
            raise QueryError(f"empty time range [{time_low}, {time_high}]")
        return cls(
            frozenset(range(state_low, state_high + 1)),
            frozenset(range(time_low, time_high + 1)),
        )

    @property
    def t_start(self) -> int:
        """Earliest query timestamp ``min(T_q)``."""
        return min(self.times)

    @property
    def t_end(self) -> int:
        """Latest query timestamp ``max(T_q)`` (the paper's ``t_end``)."""
        return max(self.times)

    @property
    def duration(self) -> int:
        """Number of query timestamps ``|T_q|``."""
        return len(self.times)

    def contains_time(self, time: int) -> bool:
        """Whether ``time`` belongs to ``T_q``."""
        return time in self.times

    def with_region(self, region: Iterable[int]) -> "SpatioTemporalWindow":
        """Same times, different spatial region (the for-all reduction)."""
        return SpatioTemporalWindow(frozenset(region), self.times)

    def validate_for(self, n_states: int) -> None:
        """Check every region state exists in an ``n_states`` space."""
        worst = max(self.region)
        if worst >= n_states:
            raise QueryError(
                f"query region state {worst} out of range [0, {n_states})"
            )


@dataclass(frozen=True)
class PSTQuery:
    """Base class for the three probabilistic spatio-temporal queries."""

    window: SpatioTemporalWindow

    @property
    def region(self) -> FrozenSet[int]:
        """Spatial part ``S_q`` of the window."""
        return self.window.region

    @property
    def times(self) -> FrozenSet[int]:
        """Temporal part ``T_q`` of the window."""
        return self.window.times


@dataclass(frozen=True)
class PSTExistsQuery(PSTQuery):
    """PST-exists (Definition 2): in the region at *some* query time."""

    @classmethod
    def from_ranges(
        cls, state_low: int, state_high: int, time_low: int, time_high: int
    ) -> "PSTExistsQuery":
        """Contiguous-window convenience constructor."""
        return cls(
            SpatioTemporalWindow.from_ranges(
                state_low, state_high, time_low, time_high
            )
        )


@dataclass(frozen=True)
class PSTForAllQuery(PSTQuery):
    """PST-for-all (Definition 3): in the region at *all* query times.

    Processed through the paper's complement identity (Section VII):
    ``P_forall(S_q, T_q) = 1 - P_exists(S \\ S_q, T_q)``.
    """

    @classmethod
    def from_ranges(
        cls, state_low: int, state_high: int, time_low: int, time_high: int
    ) -> "PSTForAllQuery":
        """Contiguous-window convenience constructor."""
        return cls(
            SpatioTemporalWindow.from_ranges(
                state_low, state_high, time_low, time_high
            )
        )

    def complement_exists(self, n_states: int) -> PSTExistsQuery:
        """The equivalent exists-query over the complement region."""
        if max(self.region) >= n_states:
            raise QueryError(
                f"query region exceeds state space of size {n_states}"
            )
        complement = frozenset(range(n_states)) - self.region
        if not complement:
            raise QueryError(
                "for-all region covers the whole space; probability is "
                "trivially 1"
            )
        return PSTExistsQuery(self.window.with_region(complement))


@dataclass(frozen=True)
class PSTKTimesQuery(PSTQuery):
    """PST-k-times (Definition 4): in the region at exactly ``k`` times.

    When ``k`` is None the processor reports the full distribution over
    ``k = 0 .. |T_q|``; otherwise a single probability.
    """

    k: Optional[int] = None

    def __post_init__(self) -> None:
        if self.k is not None and not (0 <= self.k <= self.window.duration):
            raise QueryError(
                f"k={self.k} outside [0, |T_q|={self.window.duration}]"
            )

    @classmethod
    def from_ranges(
        cls,
        state_low: int,
        state_high: int,
        time_low: int,
        time_high: int,
        k: Optional[int] = None,
    ) -> "PSTKTimesQuery":
        """Contiguous-window convenience constructor."""
        return cls(
            SpatioTemporalWindow.from_ranges(
                state_low, state_high, time_low, time_high
            ),
            k,
        )
