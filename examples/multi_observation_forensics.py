#!/usr/bin/env python3
"""Multi-observation interpolation: "was the suspect near the scene?"

The Section VI machinery answers queries *between* observations: given a
sighting before and after the query window, which possible worlds remain,
and what fraction of them crosses the window?

This example builds a corridor world (a 1-D line of states), observes an
object at both ends of a time interval, and asks for the probability that
it passed through a monitored segment in between -- once with one
observation (extrapolation) and once with both (interpolation).  The
second observation changes the answer drastically; a Monte-Carlo
importance sampler validates the exact result.

Run:  python examples/multi_observation_forensics.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.workloads.synthetic import make_line_chain


def main() -> None:
    n_states = 60
    # a random-walk-ish corridor: from each state, 4 successors within
    # +/- 4 states
    chain = make_line_chain(
        n_states, state_spread=4, max_step=8, seed=3
    )

    # the monitored segment: states 28..32, watched at timestamps 4..8
    window = repro.SpatioTemporalWindow(
        frozenset(range(28, 33)), frozenset(range(4, 9))
    )

    # sighting 1: the object starts around state 20 at t = 0
    first = repro.Observation.uniform(0, n_states, range(19, 22))

    print("== extrapolation: one sighting at t=0 near state 20 ==")
    p_single = repro.ob_exists_probability(
        chain, first.distribution, window
    )
    print(f"P(passes the monitored segment) = {p_single:.3f}")

    # ------------------------------------------------------------------
    # sighting 2a: at t = 12 the object is seen near state 40 -- it must
    # have moved right, most plausibly through the segment
    # ------------------------------------------------------------------
    second_far = repro.Observation.uniform(12, n_states, range(34, 38))
    p_far = repro.ob_exists_probability_multi(
        chain,
        repro.ObservationSet.of(first, second_far),
        window,
    )
    print("\n== interpolation: second sighting at t=12 near state 35 ==")
    print(f"P(passed the segment | both sightings) = {p_far:.3f}")

    # ------------------------------------------------------------------
    # sighting 2b: at t = 12 the object is seen near state 10 -- it
    # moved left, away from the segment
    # ------------------------------------------------------------------
    second_near = repro.Observation.uniform(12, n_states, range(9, 12))
    p_near = repro.ob_exists_probability_multi(
        chain,
        repro.ObservationSet.of(first, second_near),
        window,
    )
    print("\n== interpolation: second sighting at t=12 near state 10 ==")
    print(f"P(passed the segment | both sightings) = {p_near:.3f}")

    print(
        "\nThe second observation re-weights the possible worlds "
        "(paper Eq. 1):\n"
        f"  moving right raises the answer "
        f"({p_single:.3f} -> {p_far:.3f}),\n"
        f"  moving left lowers it ({p_single:.3f} -> {p_near:.3f})."
    )

    # ------------------------------------------------------------------
    # validation: importance-sampling Monte-Carlo reaches the same value
    # ------------------------------------------------------------------
    print("\n== Monte-Carlo validation (importance sampling) ==")
    sampler = repro.MonteCarloSampler(chain, seed=0)
    estimate = sampler.exists_probability_multi(
        repro.ObservationSet.of(first, second_far),
        window,
        n_samples=50_000,
    )
    low, high = estimate.confidence_interval()
    print(
        f"exact {p_far:.4f} vs sampled {estimate.estimate:.4f} "
        f"(95% CI [{low:.4f}, {high:.4f}])"
    )
    inside = low - 1e-9 <= p_far <= high + 1e-9
    print("exact value inside the confidence interval:",
          "yes" if inside else "no")

    # ------------------------------------------------------------------
    # bonus: the posterior location at an intermediate timestamp
    # ------------------------------------------------------------------
    print("\n== posterior location at t = 6 given both sightings ==")
    # forward pass fused with backward evidence via Lemma 1:
    forward = chain.propagate(first.distribution, 6)
    # the likelihood of reaching the second sighting from each state in
    # the remaining 6 steps, via repeated column-action of the chain
    obs_vector = second_far.distribution.vector
    likelihood = obs_vector.copy()
    for _ in range(6):
        likelihood = np.asarray(
            chain.matrix @ likelihood, dtype=float
        )
    posterior = forward.fuse(
        repro.StateDistribution(likelihood / likelihood.sum())
    )
    top = sorted(posterior.items(), key=lambda pair: -pair[1])[:5]
    for state, probability in top:
        print(f"  state {state}: {probability:.3f}")


if __name__ == "__main__":
    main()
