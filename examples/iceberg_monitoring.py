#!/usr/bin/env python3
"""Iceberg monitoring: the paper's motivating application.

The International Ice Patrol scenario from the paper's introduction:
icebergs near the Grand Banks drift with the current; sightings are
uncertain and become stale.  The Markov model answers:

1. *exists*: which icebergs have non-zero probability to enter a ship's
   route during its crossing window?
2. *for-all*: which icebergs will (probably) stay inside a survey region
   long enough for measurements?
3. *k-times*: for how many timestamps is an iceberg expected inside the
   shipping lane?
4. forecasting: which ocean cells will see the densest ice?

Run:  python examples/iceberg_monitoring.py
"""

from __future__ import annotations

import repro
from repro.viz import render_grid
from repro.workloads.icebergs import (
    OceanCurrentField,
    make_iceberg_database,
)


def main() -> None:
    # a 16 x 16 ocean raster; the current is a gyre plus southward drift
    grid = repro.GridStateSpace(16, 16)
    field = OceanCurrentField(
        gyre_center=(8.0, 8.0), gyre_strength=0.25, drift=(0.0, -0.8)
    )
    database = make_iceberg_database(
        grid,
        n_icebergs=25,
        sighting_uncertainty=1,
        field=field,
        diffusion=0.35,
        seed=42,
    )
    chain = database.chain()
    engine = repro.QueryEngine(database)

    # ------------------------------------------------------------------
    # 1. ship route: a corridor crossed during timestamps 3..8
    # ------------------------------------------------------------------
    route = grid.box(0, 4, 15, 6)
    crossing = repro.SpatioTemporalWindow(
        frozenset(route), frozenset(range(3, 9))
    )
    exists = engine.evaluate(repro.PSTExistsQuery(crossing), method="qb")
    dangerous = exists.above(0.05)
    print("== icebergs threatening the ship route (P >= 5%) ==")
    for object_id, probability in sorted(
        dangerous.items(), key=lambda pair: -pair[1]
    ):
        print(f"  {object_id}: {probability:.3f}")
    print(f"  ({len(dangerous)} of {len(database)} icebergs)")

    # ------------------------------------------------------------------
    # 2. survey region: icebergs that stay put for timestamps 2..5
    # ------------------------------------------------------------------
    survey = grid.box(5, 5, 10, 10)
    stay = repro.SpatioTemporalWindow(
        frozenset(survey), frozenset(range(2, 6))
    )
    forall = engine.evaluate(repro.PSTForAllQuery(stay), method="qb")
    stable = forall.top(3)
    print("\n== best survey candidates (stay in region, t = 2..5) ==")
    for object_id, probability in stable:
        print(f"  {object_id}: P_forall = {probability:.3f}")

    # ------------------------------------------------------------------
    # 3. exposure: visit-count distribution for the most dangerous berg
    # ------------------------------------------------------------------
    worst_id = exists.top(1)[0][0]
    ktimes = engine.evaluate(repro.PSTKTimesQuery(crossing), method="qb")
    distribution = ktimes.values[worst_id]
    print(f"\n== lane-exposure distribution for {worst_id} ==")
    for k, probability in enumerate(distribution):
        if probability > 0.005:
            print(f"  in the lane at exactly {k} timestamps: "
                  f"{probability:.3f}")

    # ------------------------------------------------------------------
    # 4. occupancy forecast: where the ice will concentrate at t = 6
    # ------------------------------------------------------------------
    initials = [obj.initial.distribution for obj in database]
    occupancy = repro.expected_occupancy(chain, initials, horizon=6)
    print("\n== expected iceberg density at t = 6 "
          "([] marks the ship route) ==")
    print(render_grid(grid, occupancy[6], highlight=route))

    events = repro.congestion_report(
        chain, initials, horizon=6, threshold=0.25,
        states_of_interest=route,
    )
    print("\n== route cells expected to hold >= 0.25 icebergs ==")
    for event in events[:8]:
        x, y = grid.cell_of_state(event.state)
        print(f"  cell ({x:2d}, {y:2d}) at t={event.time}: "
              f"E[count] = {event.expected_count:.2f}")
    if not events:
        print("  none -- the lane stays clear")

    # ------------------------------------------------------------------
    # 5. when will the most dangerous iceberg reach the lane?
    # ------------------------------------------------------------------
    worst = database.get(worst_id)
    passage = repro.first_passage_distribution(
        chain, worst.initial.distribution, route, horizon=12
    )
    mean_entry = passage.conditional_mean()
    median_entry = passage.quantile(0.5)
    print(f"\n== first-entry forecast for {worst_id} ==")
    print(f"  P(reaches the lane within 12 steps) = "
          f"{1.0 - passage.never_probability:.3f}")
    if mean_entry is not None:
        print(f"  expected entry time (given entry): {mean_entry:.1f}")
        print(f"  median entry time: t = {median_entry}")

    # ------------------------------------------------------------------
    # 6. which iceberg will be nearest to the ship at mid-crossing?
    # ------------------------------------------------------------------
    ship_position = grid.location_of(grid.state_of_cell(8, 5))
    nn = repro.nearest_neighbor_probabilities(
        database, ship_position, time=5
    )
    print("\n== most probable nearest iceberg to the ship at t=5 ==")
    for object_id, probability in sorted(
        nn.items(), key=lambda pair: -pair[1]
    )[:5]:
        print(f"  {object_id}: P(nearest) = {probability:.3f}")


if __name__ == "__main__":
    main()
