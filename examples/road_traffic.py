#!/usr/bin/env python3
"""Road-network traffic queries on a Munich-like network.

Reproduces the paper's road-network experiment setting (Section VIII-A):
each network node is a state, the transition matrix randomises the
adjacency rows, and vehicles with uncertain positions are queried with
probabilistic spatio-temporal predicates.

Highlights the paper's headline performance claim: the query-based (QB)
backward pass answers the whole database orders of magnitude faster than
per-object object-based (OB) processing, and Monte-Carlo is far behind
both.

Run:  python examples/road_traffic.py
"""

from __future__ import annotations

import time

import repro
from repro.workloads.road_network import (
    make_road_database,
    munich_like_config,
)


def main() -> None:
    config = munich_like_config(scale=0.02, seed=7)
    print(
        f"generating a Munich-like network: {config.n_nodes} nodes, "
        f"{config.n_edges} edges (avg degree "
        f"{config.average_degree:.2f})"
    )
    database = make_road_database(config, n_objects=400)
    space = database.state_space
    engine = repro.QueryEngine(database)

    # the monitored district: all nodes within 3 hops of a centre node
    district = space.ball(config.n_nodes // 2, 3)
    window = repro.SpatioTemporalWindow(
        frozenset(district), frozenset(range(8, 13))
    )
    print(
        f"query: {len(district)} district nodes, "
        f"timestamps 8..12, {len(database)} vehicles"
    )

    # ------------------------------------------------------------------
    # which vehicles may enter the district? (exists)
    # ------------------------------------------------------------------
    timings = {}
    results = {}
    for method, kwargs in (
        ("qb", {}),
        ("ob", {}),
        ("mc", {"n_samples": 100, "seed": 0}),
    ):
        started = time.perf_counter()
        results[method] = engine.evaluate(
            repro.PSTExistsQuery(window), method=method, **kwargs
        )
        timings[method] = time.perf_counter() - started

    print("\n== runtime comparison (PST-exists, whole database) ==")
    for method in ("mc", "ob", "qb"):
        print(f"  {method.upper():>2}: {timings[method] * 1000:9.1f} ms")
    print(f"  OB / QB speed ratio: {timings['ob'] / timings['qb']:.1f}x")
    print(f"  MC / QB speed ratio: {timings['mc'] / timings['qb']:.1f}x")

    qb = results["qb"]
    ob = results["ob"]
    worst_disagreement = max(
        abs(float(qb.values[i]) - float(ob.values[i]))
        for i in database.object_ids
    )
    print(f"  max |QB - OB| over all vehicles: {worst_disagreement:.2e}")

    entering = qb.above(0.25)
    print(f"\n== vehicles entering the district with P >= 25% "
          f"({len(entering)}) ==")
    for object_id, probability in sorted(
        entering.items(), key=lambda pair: -pair[1]
    )[:10]:
        print(f"  {object_id}: {probability:.3f}")

    # ------------------------------------------------------------------
    # location-based service: who stays in the district? (for-all)
    # ------------------------------------------------------------------
    forall = engine.evaluate(repro.PSTForAllQuery(window), method="qb")
    loyal = forall.top(5)
    print("\n== best targets for district-local advertising "
          "(stay the whole window) ==")
    for object_id, probability in loyal:
        print(f"  {object_id}: P_forall = {probability:.3f}")

    # ------------------------------------------------------------------
    # congestion forecast (the paper's future-work analysis)
    # ------------------------------------------------------------------
    initials = [obj.initial.distribution for obj in database]
    events = repro.congestion_report(
        database.chain(), initials, horizon=12, threshold=1.0
    )
    print(f"\n== nodes expected to hold >= 1 vehicle "
          f"({len(events)} node-time pairs) ==")
    for event in events[:8]:
        print(f"  node {event.state} at t={event.time}: "
              f"E[count] = {event.expected_count:.2f}")


if __name__ == "__main__":
    main()
