#!/usr/bin/env python3
"""Many concurrent clients, one engine: the query service tier.

Demonstrates :class:`repro.QueryService` end to end:

* 24 concurrent clients across 3 tenants submit overlapping queries;
  requests sharing a fusion fingerprint inside the scheduling window
  are answered by a single stacked evaluation (watch the
  evaluations-vs-requests ratio),
* each caller's plan carries ``fusion`` events showing what was
  merged and what it paid,
* admission control rejects a tenant whose budget is exhausted and a
  request whose deadline the cost model says cannot be met,
* a standing query registered through the service bills its ticks to
  the owning tenant.

Run:  python examples/service_concurrent.py
"""

from __future__ import annotations

import asyncio

import numpy as np

import repro
from repro.core.state_space import LineStateSpace
from repro.workloads.synthetic import (
    make_line_chain,
    make_object_distribution,
)

N_STATES = 300


def build_database() -> repro.TrajectoryDatabase:
    rng = np.random.default_rng(7)
    database = repro.TrajectoryDatabase(
        N_STATES, state_space=LineStateSpace(N_STATES)
    )
    for index in range(3):
        database.register_chain(
            f"chain-{index}", make_line_chain(N_STATES, rng=rng)
        )
    for index in range(60):
        database.add(
            repro.UncertainObject.with_distribution(
                f"obj-{index}",
                make_object_distribution(N_STATES, 5, rng),
                time=int(rng.integers(0, 5)),
                chain_id=f"chain-{index % 3}",
            )
        )
    return database


async def main() -> None:
    engine = repro.QueryEngine(build_database())
    queries = [
        repro.PSTExistsQuery(
            repro.SpatioTemporalWindow.from_ranges(
                80 + 10 * i, 110 + 10 * i, 8, 11
            )
        )
        for i in range(2)  # two fingerprints across 24 clients
    ]

    async with repro.QueryService(
        engine, fusion_window_ms=5.0
    ) as service:
        print("== concurrent burst: 24 clients, 2 distinct queries ==")
        results = await asyncio.gather(
            *(
                service.submit(
                    queries[i % 2], tenant=f"tenant-{i % 3}"
                )
                for i in range(24)
            )
        )
        print(
            f"{len(results)} answers from {service.evaluations} "
            f"engine evaluation(s) ({service.fused_calls} fused)"
        )
        print("one caller's fusion events:")
        for event in results[0].plan.fusion:
            print(f"  {event}")

        print("\n== admission control ==")
        service.set_tenant_budget("freeloader", 0.0)
        for kwargs in (
            {"tenant": "freeloader"},
            {"deadline_seconds": 0.0},
        ):
            try:
                await service.submit(queries[0], **kwargs)
            except repro.AdmissionRejected as rejection:
                print(f"rejected ({rejection.reason}): {rejection}")

        print("\n== standing query owned by a tenant ==")
        standing = service.watch(queries[0], tenant="monitor")
        tick = await standing.tick()
        batch = engine.evaluate(queries[0])
        worst = max(
            abs(tick.values[o] - batch.values[o]) for o in batch.values
        )
        print(f"tick matches batch evaluation: max |delta| = {worst:.1e}")

        print("\n== tenant accounts ==")
        header = f"{'tenant':<12} {'admitted':>8} {'rejected':>8} {'fused':>6}"
        print(header)
        for name, account in sorted(service.ledger.accounts().items()):
            print(
                f"{name:<12} {account.admitted:>8} "
                f"{account.rejected:>8} {account.fused:>6}"
            )


if __name__ == "__main__":
    asyncio.run(main())
