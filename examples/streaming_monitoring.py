#!/usr/bin/env python3
"""Standing queries over a live feed: the monitoring execution mode.

The paper's motivating scenarios are monitors, not one-shot queries: a
shipping lane is watched every tick while icebergs drift, are
re-sighted, and leave the area.  This example drives the streaming
engine over a generated monitoring scenario and shows

1. ``engine.watch`` -- registering a standing sliding-window query;
2. ``StandingQuery.tick`` -- incremental evaluation (backward vectors
   extended by one sparse product per slid timestamp, candidates
   patched from the database's mutation journal);
3. the ``streaming`` EXPLAIN stage with per-tick candidate deltas;
4. the parity guarantee: each tick equals a from-scratch ``evaluate``.

Run:  PYTHONPATH=src python examples/streaming_monitoring.py
"""

from __future__ import annotations

from repro import PSTExistsQuery, QueryEngine
from repro.workloads.monitoring import (
    MonitoringConfig,
    make_monitoring_workload,
)


def main() -> None:
    # a 3,000-state corridor watched for 12 ticks; every tick two new
    # objects are observed, one is re-sighted, one leaves
    config = MonitoringConfig(
        n_objects=250,
        n_states=3_000,
        n_chains=2,
        n_ticks=12,
        stride=1,
        window_low=100,
        window_high=140,
        window_lead=12,
        window_duration=5,
        arrivals_per_tick=2,
        resightings_per_tick=1,
        departures_per_tick=1,
        seed=7,
    )
    workload = make_monitoring_workload(config)
    database = workload.database
    engine = QueryEngine(database)

    standing = engine.watch(workload.query, stride=config.stride)
    replan = QueryEngine(database)  # independent from-scratch engine

    print(
        f"monitoring {len(database)} objects over "
        f"{config.n_chains} chains; window "
        f"[{config.window_low},{config.window_high}] sliding "
        f"{config.stride}/tick"
    )
    print()
    for tick in range(config.n_ticks):
        events = workload.apply(tick)  # the live feed for this tick
        result = standing.tick()
        alarms = result.above(0.25)
        streaming_stage = result.plan.stages[0]
        print(
            f"tick {tick:>2}: {len(result):>3} objects "
            f"(+{len(events.arrivals)}/-{len(events.departures)}), "
            f"{streaming_stage.candidates_out:>3} candidates, "
            f"{len(alarms):>2} above 25%  "
            f"[{result.elapsed_seconds * 1e3:6.2f} ms]"
        )

    print()
    print("last executed plan (note the streaming stage):")
    print(standing.explain().describe())

    # the contract: a tick equals re-evaluating the window from scratch
    final_window = workload.window_at(config.n_ticks - 1)
    reference = replan.evaluate(PSTExistsQuery(final_window))
    worst = max(
        abs(result.values[object_id] - reference.values[object_id])
        for object_id in database.object_ids
    )
    print(f"\nmax |streaming - replan| on the last tick: {worst:.2e}")
    assert worst <= 1e-12


if __name__ == "__main__":
    main()
