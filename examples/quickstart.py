#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Reproduces Sections V-A, V-B and VII of "Querying Uncertain
Spatio-Temporal Data" (Emrich et al., ICDE 2012) on the 3-state
Markov chain used throughout the paper:

* the PST-exists probability 0.864 via both processing strategies,
* the visit-count distribution (0.136, 0.672, 0.192),
* the Monte-Carlo baseline converging to the same value,
* a tiny database queried through the engine facade.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro


def main() -> None:
    # --- the model: a 3-state homogeneous Markov chain -----------------
    chain = repro.MarkovChain(
        [
            [0.0, 0.0, 1.0],  # from s1: always to s3
            [0.6, 0.0, 0.4],  # from s2: to s1 (60%) or s3 (40%)
            [0.0, 0.8, 0.2],  # from s3: to s2 (80%) or stay (20%)
        ]
    )

    # --- the query window: S = {s1, s2}, T = {2, 3} --------------------
    window = repro.SpatioTemporalWindow(
        region=frozenset({0, 1}), times=frozenset({2, 3})
    )

    # --- the object: observed at s2 at time 0 --------------------------
    start = repro.StateDistribution.point(3, 1)

    print("== PST-exists query (paper Sections V-A / V-B) ==")
    p_ob = repro.ob_exists_probability(chain, start, window)
    p_qb = repro.qb_exists_probability(chain, start, window)
    print(f"object-based answer : {p_ob:.3f}   (paper: 0.864)")
    print(f"query-based answer  : {p_qb:.3f}   (paper: 0.864)")

    print("\n== the query-based backward vector (paper Example 2) ==")
    evaluator = repro.QueryBasedEvaluator(chain, window)
    for state in range(3):
        print(
            f"an object starting at s{state + 1} satisfies the query "
            f"with probability {evaluator.state_probability(state):.3f}"
        )

    print("\n== PST-k-times query (paper Section VII) ==")
    distribution = repro.ktimes_distribution(chain, start, window)
    for k, probability in enumerate(distribution):
        print(f"inside the window exactly {k} time(s): {probability:.3f}")

    print("\n== Monte-Carlo baseline (paper Section VIII-A) ==")
    for n_samples in (100, 10_000):
        result = repro.mc_exists_probability(
            chain, start, window, n_samples=n_samples, seed=0
        )
        print(
            f"{n_samples:>6} samples: estimate {result.estimate:.3f} "
            f"(std. err. {result.standard_error:.3f})"
        )

    print("\n== a database of objects, queried in batch ==")
    database = repro.TrajectoryDatabase.with_chain(chain)
    for index, state in enumerate((0, 1, 2)):
        database.add(
            repro.UncertainObject.at_state(f"obj-{index}", 3, state)
        )
    engine = repro.QueryEngine(database)
    result = engine.evaluate(
        repro.PSTExistsQuery(window), method="qb"
    )
    for object_id in database.object_ids:
        print(f"{object_id}: P_exists = {result.values[object_id]:.3f}")
    print(f"(answered {len(result)} objects in "
          f"{result.elapsed_seconds * 1000:.2f} ms)")

    # The engine evaluates all objects sharing a chain in one batched
    # sweep, and its plan cache keeps the augmented matrices and
    # backward vectors across queries -- so a monitoring loop that
    # re-issues the same window pays matrix construction only once.
    # Pass plan_cache=repro.PlanCache() shared between engines to
    # amortise across sessions.
    repeat = engine.evaluate(repro.PSTExistsQuery(window), method="qb")
    stats = engine.plan_cache.stats
    print(f"\n== plan cache after a repeated query ==")
    print(f"constructions: {stats.total_constructions}, "
          f"hits: {stats.hits} "
          f"(repeat took {repeat.elapsed_seconds * 1000:.2f} ms)")


if __name__ == "__main__":
    main()
