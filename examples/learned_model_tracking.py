#!/usr/bin/env python3
"""Learning the model from logs, then tracking with it.

The paper assumes transition probabilities are "derived from historical
data" (Section IV).  This example closes that loop on a synthetic
courier scenario:

1. **learn** -- estimate the courier's Markov chain from a log of past
   (certain) GPS trajectories, with Laplace smoothing over the road
   adjacency;
2. **query** -- answer a PST-exists window query with the learned chain
   and compare against the (hidden) true chain;
3. **smooth** -- given two sightings of today's courier, compute the
   posterior location at every timestamp in between (forward-backward)
   and the single most probable route (Viterbi);
4. **pattern** -- a Lahar-style sequence query: "did the courier visit
   the depot at least twice?"

Run:  python examples/learned_model_tracking.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.core.sequence import Pattern, sequence_probability
from repro.workloads.road_network import (
    RoadNetworkConfig,
    make_road_database,
)


def main() -> None:
    # ------------------------------------------------------------------
    # the hidden truth: a small road network and its true chain
    # ------------------------------------------------------------------
    config = RoadNetworkConfig("courier-city", 120, 170, seed=11)
    database = make_road_database(config, n_objects=1)
    space = database.state_space
    true_chain = database.chain()
    n = space.n_states
    rng = np.random.default_rng(0)

    # ------------------------------------------------------------------
    # 1. learn the chain from 600 logged trips
    # ------------------------------------------------------------------
    depot = 0
    start = repro.StateDistribution.point(n, depot)
    log = [
        repro.sample_trajectory(true_chain, start, horizon=25, rng=rng)
        for _ in range(600)
    ]
    support = {
        state: space.out_neighbors(state) or [state]
        for state in range(n)
    }
    estimator = repro.ChainEstimator(n, support=support)
    estimator.add_trajectories(log)
    learned = estimator.to_chain(smoothing=0.2)
    # judge accuracy on rows the courier actually frequents; rarely
    # visited intersections stay near the smoothed prior
    visited = [
        state for state in range(n)
        if sum(estimator.count(state, t) for t in support[state]) >= 50
    ]
    error = float(
        np.abs(
            learned.to_dense()[visited] - true_chain.to_dense()[visited]
        ).max()
    )
    print(
        f"learned chain from {len(log)} trips; max entry error on the "
        f"{len(visited)} well-visited intersections = {error:.3f}"
    )

    # ------------------------------------------------------------------
    # 2. query with the learned model vs the hidden truth
    # ------------------------------------------------------------------
    # a district the courier can plausibly reach: centred on its most
    # probable location 8 steps out
    center = int(true_chain.propagate(start, 8).mode())
    district = space.ball(center, 2)
    window = repro.SpatioTemporalWindow(
        frozenset(district), frozenset(range(6, 11))
    )
    p_true = repro.qb_exists_probability(true_chain, start, window)
    p_learned = repro.qb_exists_probability(learned, start, window)
    print(
        f"\nP(courier enters the district at t=6..10):\n"
        f"  with the hidden true chain : {p_true:.3f}\n"
        f"  with the learned chain     : {p_learned:.3f}"
    )

    # ------------------------------------------------------------------
    # 3. today's courier: two sightings, smoothed in between
    # ------------------------------------------------------------------
    today = repro.sample_trajectory(
        true_chain, start, horizon=12, rng=rng
    )
    sightings = repro.ObservationSet.of(
        repro.Observation.precise(0, n, today[0]),
        repro.Observation.precise(12, n, today[12]),
    )
    marginals = repro.posterior_marginals(learned, sightings)
    route, route_probability = repro.map_trajectory(learned, sightings)
    hits = sum(
        1
        for offset in range(13)
        if route[offset] == today[offset]
    )
    print(
        f"\nsmoothed today's trip between sightings at t=0 and t=12:\n"
        f"  posterior entropy at t=6: "
        f"{marginals[6].entropy():.2f} bits\n"
        f"  MAP route probability   : {route_probability:.4f}\n"
        f"  MAP route matches the true route at {hits}/13 timestamps"
    )

    # ------------------------------------------------------------------
    # 4. sequence query: visited the depot neighbourhood twice?
    # ------------------------------------------------------------------
    depot_area = frozenset(space.ball(depot, 1))
    visit = Pattern.states(depot_area)
    away = Pattern.states(
        frozenset(range(n)) - depot_area
    )
    twice = (
        Pattern.any().star()
        .then(visit).then(away.plus())
        .then(visit)
        .then(Pattern.any().star())
    )
    p_twice = sequence_probability(learned, start, twice, length=12)
    print(
        f"\nP(courier returns to the depot area after leaving it, "
        f"within 12 steps) = {p_twice:.3f}"
    )


if __name__ == "__main__":
    main()
